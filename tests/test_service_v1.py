"""End-to-end coverage of the versioned ``/v1`` service API.

Three layers:

- **HTTP surface** (subprocess ``python -m repro serve``): every ``/v1``
  route, the legacy aliases' ``Deprecation`` header, the uniform error
  envelope (``code``/``message``/``retry_after``), structured 410 for
  closed sessions, and the ``Retry-After`` header on retryable rejections.
- **Durability over the wire**: checkpoint → close → restore round trips
  through :class:`repro.service.ServiceClient`, and a real crash — SIGKILL
  the node, start a fresh one on the same snapshot directory, restore, and
  the resumed session's detections are bitwise identical to a session that
  never died.
- **In-process manager semantics** (``asyncio.run``, no HTTP): the
  reaper/in-flight-request race regression, eviction and shutdown
  checkpointing, auto-checkpoint intervals, stale-snapshot hygiene on
  create, and the restore error taxonomy.

``tests/test_service_http.py`` keeps covering the legacy routes unchanged;
this module is the ``/v1`` counterpart.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.streaming import StreamingEnsembleDetector
from repro.service import (
    BadRequest,
    ServiceClient,
    ServiceClientError,
    SessionExists,
    SessionGone,
    SessionNotFound,
    StreamSessionManager,
)
from repro.service.snapshot import LocalSnapshotStore

CONFIG = dict(window=50, ensemble_size=5, max_paa_size=5, max_alphabet_size=5)

BANNER = re.compile(r"serving on http://127\.0\.0\.1:(\d+)")


def make_series(seed: int, n: int = 700) -> list[float]:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 14.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 60] *= 0.2
    return [float(v) for v in series]


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Subprocess harness.
# ----------------------------------------------------------------------


def start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError("server exited before binding")
        match = BANNER.search(line or "")
        if match:
            return process, int(match.group(1))
    process.kill()
    raise RuntimeError("server did not start within 60s")


def stop_server(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def request(
    port: int, method: str, path: str, body: dict | None = None, timeout: float = 60.0
) -> tuple[int, dict, dict]:
    """One HTTP request; returns (status, decoded JSON, headers)."""
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    snapshots = tmp_path_factory.mktemp("snapshots")
    process, port = start_server("--snapshot-dir", str(snapshots), "--node-id", "n0")
    yield port
    stop_server(process)


# ----------------------------------------------------------------------
# The /v1 surface and its legacy aliases.
# ----------------------------------------------------------------------


class TestV1Surface:
    def test_canonical_routes_carry_no_deprecation_header(self, server):
        for path in ("/v1/healthz", "/v1/stats", "/v1/sessions", "/v1/nodes"):
            status, _, headers = request(server, "GET", path)
            assert status == 200
            assert "Deprecation" not in headers, path

    def test_legacy_aliases_work_but_are_marked_deprecated(self, server):
        for old, new in (
            ("/healthz", "/v1/healthz"),
            ("/stats", "/v1/stats"),
            ("/sessions", "/v1/sessions"),
        ):
            old_status, old_body, old_headers = request(server, "GET", old)
            new_status, new_body, _ = request(server, "GET", new)
            assert old_status == new_status == 200
            assert old_headers.get("Deprecation") == "true"
            assert set(old_body) == set(new_body)

    def test_legacy_detect_alias(self, server):
        payload = {"series": make_series(0, 300), "k": 2, "seed": 1, **CONFIG}
        old_status, old_body, old_headers = request(server, "POST", "/detect", payload)
        new_status, new_body, new_headers = request(server, "POST", "/v1/detect", payload)
        assert old_status == new_status == 200
        assert old_headers.get("Deprecation") == "true"
        assert "Deprecation" not in new_headers
        assert old_body["anomalies"] == new_body["anomalies"]

    def test_nodes_reports_this_node(self, server):
        _, body, _ = request(server, "GET", "/v1/nodes")
        (node,) = body["nodes"]
        assert node["node"] == "n0"
        assert node["role"] == "serve"
        assert node["alive"] is True
        assert isinstance(node["sessions"], int)

    def test_stats_names_the_node(self, server):
        _, body, _ = request(server, "GET", "/v1/stats")
        assert body["node"] == "n0"
        assert "snapshots_written" in body["sessions"]

    def test_error_envelope_is_uniform(self, server):
        status, body, _ = request(server, "POST", "/v1/detect", {"series": "nope"})
        assert status == 400
        assert body["error"]["code"] == "bad-request"
        assert isinstance(body["error"]["message"], str)
        assert "retry_after" not in body["error"]

    def test_unknown_route_404(self, server):
        status, body, _ = request(server, "GET", "/v1/wibble")
        assert status == 404
        assert body["error"]["code"] == "not-found"

    def test_unknown_session_is_404_not_410(self, server):
        status, body, _ = request(server, "GET", "/v1/sessions/never.existed")
        assert status == 404
        assert body["error"]["code"] == "session-not-found"


class TestSessionLifecycleOverHTTP:
    def test_closed_session_is_a_structured_410(self, server):
        client = ServiceClient(f"http://127.0.0.1:{server}")
        client.create_session("t.gone", seed=2, **CONFIG)
        client.append("t.gone", make_series(2, 200))
        client.close_session("t.gone")
        with pytest.raises(ServiceClientError) as excinfo:
            client.anomalies("t.gone")
        assert excinfo.value.status == 410
        assert excinfo.value.code == "session-gone"
        # Appending to it is the same structured 410, not a generic error.
        with pytest.raises(ServiceClientError) as excinfo:
            client.append("t.gone", [0.0, 1.0])
        assert excinfo.value.status == 410
        # The raw envelope agrees with the typed client.
        status, body, _ = request(server, "GET", "/v1/sessions/t.gone")
        assert status == 410 and body["error"]["code"] == "session-gone"

    def test_checkpoint_close_restore_round_trip(self, server):
        client = ServiceClient(f"http://127.0.0.1:{server}")
        feed = make_series(7)
        client.create_session("t.durable", seed=7, **CONFIG)
        client.append("t.durable", feed)
        reference = client.anomalies("t.durable", k=3)["anomalies"]

        checkpoint = client.snapshot("t.durable")
        assert checkpoint["snapshotted_length"] == len(feed)
        client.close_session("t.durable", keep_snapshots=True)
        restored = client.restore("t.durable")
        assert restored["restored_from"] == checkpoint["snapshot_seq"]
        assert restored["length"] == len(feed)
        assert client.anomalies("t.durable", k=3)["anomalies"] == reference
        client.close_session("t.durable")

    def test_close_without_keep_drops_the_checkpoints(self, server):
        client = ServiceClient(f"http://127.0.0.1:{server}")
        client.create_session("t.dropped", seed=3, **CONFIG)
        client.append("t.dropped", make_series(3, 300))
        client.snapshot("t.dropped")
        client.close_session("t.dropped")  # default: snapshots go too
        with pytest.raises(ServiceClientError) as excinfo:
            client.restore("t.dropped")
        assert excinfo.value.status == 404

    def test_session_info_exposes_snapshot_fields(self, server):
        client = ServiceClient(f"http://127.0.0.1:{server}")
        client.create_session("t.info", seed=4, **CONFIG)
        try:
            info = client.session("t.info")
            assert info["snapshot_seq"] == 0
            assert info["snapshotted_length"] == 0
            assert info["config"]["window"] == CONFIG["window"]
            client.append("t.info", make_series(4, 200))
            client.snapshot("t.info")
            info = client.session("t.info")
            assert info["snapshot_seq"] == 1
            assert info["snapshotted_length"] == 200
        finally:
            client.close_session("t.info")


class TestRetryAfter:
    def test_retryable_rejections_carry_the_header(self):
        process, port = start_server("--max-sessions", "1")
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            client.create_session("t.only", **CONFIG)
            status, body, headers = request(
                port, "POST", "/v1/sessions", {"name": "t.more", **CONFIG}
            )
            assert status == 429
            assert body["error"]["code"] == "overloaded"
            assert body["error"]["retry_after"] == pytest.approx(0.05)
            assert headers.get("Retry-After") == "1"  # ceil'd to whole seconds
            # The typed client surfaces the same hint.
            with pytest.raises(ServiceClientError) as excinfo:
                client.create_session("t.more", **CONFIG)
            assert excinfo.value.retry_after == pytest.approx(0.05)
        finally:
            stop_server(process)


class TestCrashRecovery:
    def test_sigkill_then_restore_on_fresh_node_is_bitwise_identical(self, tmp_path):
        feed = make_series(11, 900)
        store_dir = str(tmp_path / "snapshots")

        victim, victim_port = start_server(
            "--snapshot-dir", store_dir, "--node-id", "doomed"
        )
        client = ServiceClient(f"http://127.0.0.1:{victim_port}")
        client.create_session("t.crash", seed=11, **CONFIG)
        client.append("t.crash", feed[:600])
        client.snapshot("t.crash")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)

        survivor, port = start_server(
            "--snapshot-dir", store_dir, "--node-id", "survivor"
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            restored = client.restore("t.crash")
            assert restored["length"] == 600
            client.append("t.crash", feed[600:])
            resumed = client.anomalies("t.crash", k=4)["anomalies"]

            # A same-configured session that never crashed, on the same node.
            client.create_session("t.witness", seed=11, **CONFIG)
            client.append("t.witness", feed)
            uninterrupted = client.anomalies("t.witness", k=4)["anomalies"]
            assert resumed == uninterrupted
        finally:
            stop_server(survivor)


# ----------------------------------------------------------------------
# In-process manager semantics.
# ----------------------------------------------------------------------


class TestManagerCheckpointing:
    def test_auto_checkpoint_interval(self, tmp_path):
        async def scenario():
            store = LocalSnapshotStore(tmp_path)
            manager = StreamSessionManager(snapshot_store=store, snapshot_interval=200)
            await manager.create("t.auto", **CONFIG)
            first = await manager.append("t.auto", make_series(0, 150))
            assert first["snapshotted_length"] == 0  # below the interval
            second = await manager.append("t.auto", make_series(1, 150))
            assert second["snapshotted_length"] == 300
            assert manager.snapshots_written == 1
            assert store.seqs("t.auto") == [1]
            await manager.aclose()

        run(scenario())

    def test_graceful_shutdown_checkpoints_unsaved_data(self, tmp_path):
        feed = make_series(5)

        async def first_life():
            store = LocalSnapshotStore(tmp_path)
            manager = StreamSessionManager(snapshot_store=store)
            await manager.create("t.shutdown", seed=5, **CONFIG)
            await manager.append("t.shutdown", feed)
            reference = (await manager.poll("t.shutdown", k=3))["anomalies"]
            await manager.aclose()  # checkpoints, keeps the snapshot
            return reference

        async def second_life():
            store = LocalSnapshotStore(tmp_path)
            manager = StreamSessionManager(snapshot_store=store)
            info = await manager.restore("t.shutdown")
            assert info["length"] == len(feed)
            resumed = (await manager.poll("t.shutdown", k=3))["anomalies"]
            await manager.aclose()
            return resumed

        reference = run(first_life())
        assert run(second_life()) == reference

    def test_eviction_checkpoints_and_is_recoverable(self, tmp_path):
        async def scenario():
            store = LocalSnapshotStore(tmp_path)
            manager = StreamSessionManager(idle_timeout=5.0, snapshot_store=store)
            await manager.create("t.idle", seed=6, **CONFIG)
            await manager.append("t.idle", make_series(6, 400))
            reference = (await manager.poll("t.idle", k=3))["anomalies"]

            session = manager._sessions["t.idle"]
            session.last_used = asyncio.get_running_loop().time() - 60
            assert await manager.evict_idle() == ["t.idle"]
            with pytest.raises(SessionGone) as excinfo:
                await manager.poll("t.idle")
            assert excinfo.value.status == 410
            assert "evicted" in str(excinfo.value)

            # The eviction wrote a checkpoint, so the session is recoverable.
            info = await manager.restore("t.idle")
            assert info["length"] == 400
            assert (await manager.poll("t.idle", k=3))["anomalies"] == reference
            await manager.aclose()

        run(scenario())

    def test_create_clears_stale_snapshots(self, tmp_path):
        async def scenario():
            store = LocalSnapshotStore(tmp_path)
            manager = StreamSessionManager(snapshot_store=store)
            await manager.create("t.fresh", **CONFIG)
            await manager.append("t.fresh", make_series(0, 300))
            await manager.snapshot("t.fresh")
            await manager.close("t.fresh", drop_snapshots=False)
            assert store.latest("t.fresh") is not None
            # A new create means a fresh stream — the stale checkpoint from
            # the previous incarnation must not shadow it.
            await manager.create("t.fresh", **CONFIG)
            assert store.latest("t.fresh") is None
            await manager.aclose()

        run(scenario())


class TestManagerErrors:
    def test_restore_errors(self, tmp_path):
        async def scenario():
            store = LocalSnapshotStore(tmp_path)
            manager = StreamSessionManager(snapshot_store=store)
            with pytest.raises(SessionNotFound, match="no stored snapshot"):
                await manager.restore("t.never")
            await manager.create("t.live", **CONFIG)
            with pytest.raises(SessionExists):
                await manager.restore("t.live")
            store.save("t.bad", 1, b"garbage, not a snapshot container")
            with pytest.raises(BadRequest, match="cannot restore"):
                await manager.restore("t.bad")
            await manager.aclose()

        run(scenario())

    def test_snapshot_without_store_is_a_clear_400(self):
        async def scenario():
            manager = StreamSessionManager()  # no store configured
            await manager.create("t.nostore", **CONFIG)
            with pytest.raises(BadRequest, match="snapshot-dir"):
                await manager.snapshot("t.nostore")
            with pytest.raises(BadRequest, match="snapshot-dir"):
                await manager.restore("t.whatever")
            await manager.aclose()

        run(scenario())

    def test_closed_session_tombstone_reports_reason(self):
        async def scenario():
            manager = StreamSessionManager()
            await manager.create("t.bye", **CONFIG)
            await manager.close("t.bye")
            with pytest.raises(SessionGone, match="closed") as excinfo:
                await manager.append("t.bye", [1.0, 2.0])
            assert excinfo.value.status == 410
            assert excinfo.value.code == "session-gone"
            # SessionGone refines SessionNotFound, so existing handlers
            # written against 404 still catch it.
            assert isinstance(excinfo.value, SessionNotFound)
            await manager.aclose()

        run(scenario())


class TestReaperRace:
    def test_in_flight_request_blocks_eviction(self):
        """Regression: the reaper must not tear down a session mid-request.

        A session can look idle at scan time yet have a request in flight
        (holding its lock) or one that refreshes ``last_used`` before the
        reaper gets the lock. Both guards are exercised deterministically:
        the locked() skip, and the re-read of ``last_used`` on the next
        sweep after the in-flight request released.
        """

        async def scenario():
            manager = StreamSessionManager(idle_timeout=0.5)
            await manager.create("t.hot", **CONFIG)
            await manager.append("t.hot", make_series(8, 200))
            session = manager._sessions["t.hot"]
            loop = asyncio.get_running_loop()

            async def in_flight_request():
                async with session.lock:  # what append/poll hold
                    await asyncio.sleep(0.05)
                    session.last_used = loop.time()

            session.last_used = loop.time() - 60  # stale at scan time
            request_task = asyncio.ensure_future(in_flight_request())
            await asyncio.sleep(0)  # the request wins the lock first
            assert await manager.evict_idle() == []  # locked -> skipped
            await request_task
            # Lock is free now, but the request refreshed last_used — the
            # re-read keeps the session alive.
            assert await manager.evict_idle() == []
            assert (await manager.poll("t.hot", k=1))["name"] == "t.hot"
            assert manager.evicted_idle == 0
            await manager.aclose()

        run(scenario())
