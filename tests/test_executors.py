"""Unit tests for repro.core.executors — the pluggable executor subsystem.

Covers the MemberExecutor interface contract (ordering, unordered
completion, lifecycle, error propagation), shared-memory series passing
(bitwise round trip, segment cleanup), pool reuse semantics, and the
bitwise parity of member curves across all three backends.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core.engine import compute_member_curves
from repro.core.executors import (
    EXECUTOR_KINDS,
    BatchItemError,
    MemberExecutor,
    ProcessExecutor,
    SerialExecutor,
    SharedSeriesRef,
    ThreadExecutor,
    make_executor,
    open_executor,
    resolve_series,
    validate_executor_spec,
)

PARAMETERS = [(4, 4), (4, 7), (2, 3), (6, 5), (6, 2)]


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


@pytest.fixture
def member_series(rng) -> np.ndarray:
    series = np.sin(np.linspace(0, 40 * np.pi, 2000))
    series += 0.05 * rng.standard_normal(2000)
    series[900:1000] = np.sin(np.linspace(0, 12 * np.pi, 100))
    return series


class TestRegistry:
    def test_make_executor_kinds(self):
        for kind in EXECUTOR_KINDS:
            executor = make_executor(kind, 2)
            assert isinstance(executor, MemberExecutor)
            assert executor.kind == kind
            executor.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("celery", 2)

    def test_dask_spec_is_import_guarded(self):
        """'dask' is a valid spec, but without the dependency it fails clearly."""
        validate_executor_spec("dask")
        validate_executor_spec("dask:tcp://10.0.0.1:8786")
        try:
            import distributed  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="distributed"):
                make_executor("dask", 2)

    def test_validate_executor_spec(self):
        validate_executor_spec(None)
        validate_executor_spec("thread")
        validate_executor_spec("cluster")
        validate_executor_spec("cluster:127.0.0.1:9123")
        executor = SerialExecutor()
        validate_executor_spec(executor)
        with pytest.raises(ValueError, match="unknown executor"):
            validate_executor_spec("ray")
        with pytest.raises(ValueError, match="HOST:PORT"):
            validate_executor_spec("cluster:no-port")
        with pytest.raises(ValueError, match="takes no address"):
            validate_executor_spec("process:127.0.0.1:1")
        with pytest.raises(TypeError, match="MemberExecutor"):
            validate_executor_spec(42)

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadExecutor(0)

    def test_open_executor_owns_named_backends(self):
        with open_executor("thread", 2) as executor:
            assert executor.kind == "thread"
            kept = executor
        assert kept.closed

    def test_open_executor_borrows_instances(self):
        executor = ThreadExecutor(2)
        with open_executor(executor) as inner:
            assert inner is executor
        assert not executor.closed
        executor.close()


class TestInterfaceContract:
    def test_map_preserves_order(self, executor_kind):
        with make_executor(executor_kind, 2) as executor:
            assert executor.map(_square, list(range(10))) == [x * x for x in range(10)]

    def test_imap_unordered_covers_all_indices(self, executor_kind):
        with make_executor(executor_kind, 2) as executor:
            pairs = dict(executor.imap_unordered(_square, [3, 1, 4, 1, 5]))
        assert pairs == {0: 9, 1: 1, 2: 16, 3: 1, 4: 25}

    def test_map_propagates_worker_errors(self, executor_kind):
        with make_executor(executor_kind, 2) as executor:
            with pytest.raises(ValueError, match="three is right out"):
                executor.map(_fail_on_three, [1, 2, 3, 4])

    def test_closed_executor_refuses_work(self, executor_kind):
        executor = make_executor(executor_kind, 2)
        executor.close()
        executor.close()  # idempotent
        assert executor.closed
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(_square, [1])
        with pytest.raises(RuntimeError, match="closed"):
            executor.imap_unordered(_square, [1])  # refused at the call
        with pytest.raises(RuntimeError, match="closed"):
            executor.share_series(np.zeros(4))
        with pytest.raises(RuntimeError, match="closed"):
            with executor:
                pass

    def test_context_manager_closes(self, executor_kind):
        with make_executor(executor_kind, 2) as executor:
            assert not executor.closed
        assert executor.closed

    def test_repr_names_state(self, executor_kind):
        executor = make_executor(executor_kind, 2)
        assert "open" in repr(executor)
        executor.close()
        assert "closed" in repr(executor)


class TestSeriesPassing:
    def test_inline_ref_round_trip(self, executor_kind, rng):
        series = rng.standard_normal(257)
        with make_executor(executor_kind, 2) as executor:
            with executor.share_series(series) as handle:
                restored = resolve_series(handle.ref)
                assert np.array_equal(restored, series)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no POSIX shared memory")
    def test_process_backend_uses_shared_memory(self, rng, shm_segments):
        series = rng.standard_normal(1000)
        before = shm_segments()
        with ProcessExecutor(2) as executor:
            handle = executor.share_series(series)
            assert isinstance(handle.ref, SharedSeriesRef)
            assert handle.ref.length == 1000
            assert shm_segments() - before  # segment exists while shared
            assert np.array_equal(resolve_series(handle.ref), series)
            handle.close()
            handle.close()  # idempotent
            assert shm_segments() == before
        assert shm_segments() == before

    def test_process_backend_inline_fallback(self, rng):
        series = rng.standard_normal(100)
        with ProcessExecutor(2, use_shared_memory=False) as executor:
            with executor.share_series(series) as handle:
                assert not isinstance(handle.ref, SharedSeriesRef)
                assert np.array_equal(resolve_series(handle.ref), series)

    def test_thread_backend_passes_by_reference(self, rng):
        series = np.ascontiguousarray(rng.standard_normal(64))
        with ThreadExecutor(2) as executor:
            with executor.share_series(series) as handle:
                assert resolve_series(handle.ref) is not None
                assert np.shares_memory(np.asarray(handle.ref), series)

    def test_non_1d_series_rejected_on_every_backend(self, executor_kind, rng):
        """Regression: the shm ref records only a length, so a 2-D input
        must be refused up front rather than silently flattened."""
        with make_executor(executor_kind, 2) as executor:
            with pytest.raises(ValueError, match="1-dimensional"):
                executor.share_series(rng.standard_normal((3, 4)))

    def test_non_1d_batch_series_raises_batch_item_error(self, rng):
        from repro.core.engine import detect_many
        from repro.discord.discords import DiscordDetector

        good = np.sin(np.linspace(0, 12 * np.pi, 400))
        bad = np.ones((100, 2))
        detector = DiscordDetector(50)
        with ProcessExecutor(2) as executor:
            with pytest.raises(BatchItemError) as excinfo:
                detect_many(detector, [good, bad], 2, executor=executor, labels=["g", "b"])
        assert excinfo.value.index == 1
        assert excinfo.value.label == "b"


class TestPoolReuse:
    def test_lazy_pool_spawn(self):
        executor = ProcessExecutor(2)
        assert not executor.pool_started
        executor.map(_square, [1, 2])
        assert executor.pool_started
        executor.close()
        assert not executor.pool_started

    def test_pool_object_survives_across_calls(self):
        with ProcessExecutor(2) as executor:
            executor.map(_square, [1])
            first_pool = executor._pool
            executor.map(_square, [2, 3])
            assert executor._pool is first_pool

    def test_thread_pool_reuse(self):
        with ThreadExecutor(2) as executor:
            executor.map(_square, [1])
            first_pool = executor._pool
            dict(executor.imap_unordered(_square, [2, 3]))
            assert executor._pool is first_pool

    def test_named_backend_with_default_n_jobs_gets_real_parallelism(self):
        """Regression: executor='process' with the default n_jobs=1 must not
        build a one-worker pool (naming a backend is asking for parallelism)."""
        from repro.core.executors import _resolve_executor

        pool, owned = _resolve_executor("process", 1, 4)
        try:
            assert owned
            assert pool.max_workers == max(os.cpu_count() or 1, 1)
        finally:
            pool.close()
        pool, owned = _resolve_executor("process", 3, 4)
        try:
            assert pool.max_workers == 3
        finally:
            pool.close()


class TestBatchItemError:
    def test_message_carries_index_and_label(self):
        error = BatchItemError(4, "series/d.csv", ValueError("window exceeds"))
        assert error.index == 4
        assert error.label == "series/d.csv"
        assert "series 4" in str(error)
        assert "series/d.csv" in str(error)
        assert "ValueError" in error.cause_message

    def test_pickle_round_trip(self):
        error = BatchItemError(2, None, RuntimeError("boom"))
        restored = pickle.loads(pickle.dumps(error))
        assert isinstance(restored, BatchItemError)
        assert restored.index == 2
        assert restored.label is None
        assert restored.cause_message == "RuntimeError: boom"


class TestMemberCurveParity:
    def test_compute_member_curves_bitwise_identical(self, executor_kind, member_series):
        reference = compute_member_curves(
            member_series, 100, PARAMETERS, max_paa_size=10, max_alphabet_size=10, n_jobs=1
        )
        with make_executor(executor_kind, 2) as executor:
            curves = compute_member_curves(
                member_series,
                100,
                PARAMETERS,
                max_paa_size=10,
                max_alphabet_size=10,
                executor=executor,
            )
        assert len(curves) == len(reference)
        for ours, expected in zip(curves, reference):
            assert np.array_equal(ours, expected)

    def test_executor_by_name_matches_instance(self, member_series):
        by_name = compute_member_curves(
            member_series,
            100,
            PARAMETERS,
            max_paa_size=10,
            max_alphabet_size=10,
            executor="thread",
            n_jobs=2,
        )
        reference = compute_member_curves(
            member_series, 100, PARAMETERS, max_paa_size=10, max_alphabet_size=10, n_jobs=1
        )
        for ours, expected in zip(by_name, reference):
            assert np.array_equal(ours, expected)
