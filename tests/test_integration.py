"""End-to-end integration tests: the paper's pipeline on real corpora.

These tests run the complete flow — corpus generation, all five methods,
scoring — at reduced scale, asserting the *qualitative* claims the paper
makes (the benches assert them at full scale with printed tables).
"""

from __future__ import annotations

import pytest

from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.planting import make_corpus, make_multi_anomaly_case, make_test_case
from repro.datasets.power import dishwasher_series, fridge_freezer_series
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.baselines import make_baseline_factories
from repro.evaluation.harness import evaluate_methods_on_corpus
from repro.evaluation.metrics import best_score


class TestFiveMethodComparison:
    """A miniature Table 4/5 run on one dataset."""

    @pytest.fixture(scope="class")
    def results(self):
        corpus = make_corpus(DATASETS["TwoLeadECG"], n_cases=5, seed=11)
        factories = make_baseline_factories(seed=0)
        return evaluate_methods_on_corpus(corpus, factories)

    def test_all_methods_produce_scores(self, results):
        assert set(results) == {"Proposed", "GI-Random", "GI-Fix", "GI-Select", "Discord"}
        for method in results.values():
            assert len(method.scores) == 5

    def test_ensemble_hits_most_cases(self, results):
        assert results["Proposed"].hit_rate >= 0.8

    def test_ensemble_at_least_matches_single_run_baselines(self, results):
        """The paper's core claim, at miniature scale."""
        proposed = results["Proposed"].average
        assert proposed >= results["GI-Fix"].average - 0.05
        assert proposed >= results["GI-Random"].average - 0.05


class TestEnsembleAcrossDatasets:
    @pytest.mark.parametrize(
        "name", ["TwoLeadECG", "GunPoint", "Wafer", "Trace"]
    )
    def test_ensemble_finds_planted_anomaly(self, name):
        dataset = DATASETS[name]
        case = make_test_case(dataset, seed=21)
        detector = EnsembleGrammarDetector(
            window=dataset.spec.instance_length, ensemble_size=25, seed=1
        )
        anomalies = detector.detect(case.series, k=3)
        assert best_score(anomalies, case.gt_location, case.gt_length) > 0.0

    def test_starlight_large_window(self):
        dataset = DATASETS["StarLightCurve"]
        case = make_test_case(dataset, seed=2)
        detector = EnsembleGrammarDetector(window=1024, ensemble_size=20, seed=1)
        anomalies = detector.detect(case.series, k=3)
        assert best_score(anomalies, case.gt_location, case.gt_length) > 0.0


class TestMultipleAnomalies:
    """Section 7.5 protocol at reduced scale."""

    def test_both_anomalies_detected(self):
        case = make_multi_anomaly_case(
            DATASETS["Trace"], seed=7, n_normal=20, n_anomalies=2
        )
        detector = EnsembleGrammarDetector(window=275, ensemble_size=25, seed=0)
        candidates = detector.detect(case.series, k=3)
        detected = 0
        for location in case.gt_locations:
            if any(
                abs(c.position - location) < case.gt_length for c in candidates
            ):
                detected += 1
        assert detected >= 1  # at least one; typically both


class TestPowerCaseStudies:
    def test_dishwasher_anomalous_cycle_found(self):
        """Figure 1 scenario: the short-usage cycle is detectable."""
        series, anomaly = dishwasher_series(n_cycles=20, seed=0)
        detector = EnsembleGrammarDetector(
            window=anomaly.length, ensemble_size=20, seed=0
        )
        candidates = detector.detect(series, k=3)
        assert any(
            abs(c.position - anomaly.position) < anomaly.length for c in candidates
        )

    def test_fridge_freezer_case_study(self):
        """Figure 9 scenario at reduced length: the injected anomalies rank
        among the top candidates."""
        series, anomalies = fridge_freezer_series(length=40_000, seed=0)
        detector = EnsembleGrammarDetector(window=900, ensemble_size=20, seed=0)
        candidates = detector.detect(series, k=3)
        hits = 0
        for truth in anomalies:
            if any(
                c.position < truth.position + truth.length
                and truth.position < c.position + c.length
                for c in candidates
            ):
                hits += 1
        assert hits >= 1

    def test_window_length_robustness(self):
        """Tables 13/14: performance persists with n < na."""
        dataset = DATASETS["Trace"]
        case = make_test_case(dataset, seed=3)
        for fraction in (0.6, 0.8, 1.0):
            window = int(fraction * 275)
            detector = EnsembleGrammarDetector(window=window, ensemble_size=20, seed=0)
            anomalies = detector.detect(case.series, k=3)
            assert best_score(anomalies, case.gt_location, case.gt_length) > 0.0


class TestScalabilityContract:
    def test_ensemble_handles_long_series(self):
        """Smoke-scale Figure 8: a 40k random walk completes quickly."""
        from repro.datasets.generators import random_walk

        series = random_walk(40_000, seed=0)
        detector = EnsembleGrammarDetector(window=200, ensemble_size=10, seed=0)
        anomalies = detector.detect(series, k=3)
        assert len(anomalies) == 3

    def test_linear_vs_quadratic_shape(self):
        """Ensemble runtime grows far slower than STOMP's with length."""
        import time

        from repro.datasets.generators import random_walk
        from repro.discord.matrix_profile import matrix_profile_stomp

        short = random_walk(5_000, seed=1)
        long = random_walk(20_000, seed=1)
        detector = EnsembleGrammarDetector(window=128, ensemble_size=10, seed=0)

        def timed(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        ens_ratio = timed(lambda: detector.detect(long)) / max(
            timed(lambda: detector.detect(short)), 1e-9
        )
        stomp_ratio = timed(lambda: matrix_profile_stomp(long, 128)) / max(
            timed(lambda: matrix_profile_stomp(short, 128)), 1e-9
        )
        # 4x the length: linear ~4x, quadratic ~16x. Generous margins keep
        # the assertion robust on loaded machines.
        assert ens_ratio < stomp_ratio
