"""Run the doctest examples embedded in the public API docstrings.

Every module whose docstrings carry executable examples is checked here,
so the documentation can never drift from the implementation.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULES_WITH_EXAMPLES = [
    "repro",
    "repro.core.detector",
    "repro.core.engine",
    "repro.core.ensemble",
    "repro.core.streaming",
    "repro.discord.discords",
    "repro.grammar.motifs",
    "repro.grammar.rra",
    "repro.grammar.sequitur",
    "repro.sax.sax",
    "repro.utils.timing",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_EXAMPLES)
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
    assert results.attempted > 0, f"{module_name} lost its doctest examples"
