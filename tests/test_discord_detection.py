"""Unit tests for repro.discord.discords and repro.discord.hotsax."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly
from repro.discord.discords import Discord, DiscordDetector, top_discords
from repro.discord.hotsax import hotsax_discords
from repro.discord.matrix_profile import matrix_profile_brute, matrix_profile_stomp


@pytest.fixture
def spiky_series() -> np.ndarray:
    """Periodic series with two distinct planted *shape* anomalies.

    Both anomalies change the shape, not just the amplitude — z-normalized
    distances are amplitude-invariant, so a pure rescaling would be
    (correctly) invisible to discord discovery.
    """
    series = np.sin(np.linspace(0, 60 * np.pi, 3000))
    series[800:850] += 2.0  # level shift inside a cycle
    series[2000:2050] = np.sin(np.linspace(0, 8 * np.pi, 50))  # frequency x4
    return series


class TestDiscordRecord:
    def test_valid(self):
        discord = Discord(position=5, length=10, distance=1.5, neighbour=50)
        assert discord.position == 5

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Discord(position=0, length=4, distance=-1.0, neighbour=0)

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            Discord(position=-1, length=4, distance=1.0, neighbour=0)


class TestTopDiscords:
    def test_returns_descending_distances(self, spiky_series):
        profile = matrix_profile_stomp(spiky_series, 50)
        discords = top_discords(profile, k=3)
        distances = [d.distance for d in discords]
        assert distances == sorted(distances, reverse=True)

    def test_non_overlapping(self, spiky_series):
        profile = matrix_profile_stomp(spiky_series, 50)
        discords = top_discords(profile, k=3)
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                assert abs(a.position - b.position) >= 50

    def test_first_discord_is_profile_argmax(self, spiky_series):
        profile = matrix_profile_stomp(spiky_series, 50)
        discords = top_discords(profile, k=1)
        assert discords[0].position == int(np.argmax(profile.profile))

    def test_finds_both_planted_anomalies(self, spiky_series):
        # k=3 because the strong frequency anomaly can claim two
        # non-overlapping slots (one per flank) before the bump anomaly.
        profile = matrix_profile_stomp(spiky_series, 50)
        positions = [d.position for d in top_discords(profile, k=3)]
        assert any(750 <= p <= 860 for p in positions)
        assert any(1950 <= p <= 2060 for p in positions)

    def test_k_larger_than_possible(self):
        series = np.sin(np.linspace(0, 8 * np.pi, 100))
        profile = matrix_profile_stomp(series, 40)
        discords = top_discords(profile, k=10)
        assert 1 <= len(discords) <= 2  # only ~2 disjoint windows fit

    def test_invalid_k(self, spiky_series):
        profile = matrix_profile_stomp(spiky_series[:200], 20)
        with pytest.raises(ValueError, match="positive"):
            top_discords(profile, k=0)


class TestDiscordDetector:
    def test_detect_returns_anomalies(self, spiky_series):
        detector = DiscordDetector(window=50)
        anomalies = detector.detect(spiky_series, k=3)
        assert all(isinstance(a, Anomaly) for a in anomalies)
        assert [a.rank for a in anomalies] == [1, 2, 3]

    def test_scores_are_distances_descending(self, spiky_series):
        detector = DiscordDetector(window=50)
        anomalies = detector.detect(spiky_series, k=3)
        scores = [a.score for a in anomalies]
        assert scores == sorted(scores, reverse=True)
        assert all(score >= 0 for score in scores)

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            DiscordDetector(window=1)

    def test_window_larger_than_series_rejected(self, spiky_series):
        detector = DiscordDetector(window=5000)
        with pytest.raises(ValueError, match="exceeds"):
            detector.detect(spiky_series)

    def test_anomaly_length_equals_window(self, spiky_series):
        detector = DiscordDetector(window=64)
        anomalies = detector.detect(spiky_series, k=2)
        assert all(a.length == 64 for a in anomalies)


class TestHotsax:
    def test_matches_brute_force_top_discord(self, rng):
        series = np.cumsum(rng.standard_normal(300))
        brute = matrix_profile_brute(series, 25)
        finite = np.where(np.isfinite(brute.profile), brute.profile, -np.inf)
        expected = float(np.max(finite))
        found = hotsax_discords(series, 25, k=1, seed=3)[0]
        assert found.distance == pytest.approx(expected, abs=1e-6)

    def test_seed_invariance_of_result(self, spiky_series):
        series = spiky_series[:600]
        a = hotsax_discords(series, 40, k=1, seed=0)[0]
        b = hotsax_discords(series, 40, k=1, seed=99)[0]
        assert a.distance == pytest.approx(b.distance, abs=1e-9)

    def test_top_k_non_overlapping(self, spiky_series):
        discords = hotsax_discords(spiky_series[:1200], 50, k=3)
        for i, a in enumerate(discords):
            for b in discords[i + 1 :]:
                assert abs(a.position - b.position) >= 50

    def test_finds_planted_anomaly(self, spiky_series):
        found = hotsax_discords(spiky_series[:1200], 50, k=1)[0]
        assert 750 <= found.position <= 860

    def test_invalid_k_rejected(self, spiky_series):
        with pytest.raises(ValueError, match="positive"):
            hotsax_discords(spiky_series[:200], 20, k=0)

    def test_custom_sax_parameters(self, spiky_series):
        found = hotsax_discords(
            spiky_series[:800], 50, k=1, paa_size=4, alphabet_size=4
        )[0]
        assert found.distance > 0
