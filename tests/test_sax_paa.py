"""Unit and property tests for repro.sax.paa (PAA and FastPAA, Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sax.paa import CumulativeStats, paa, paa_naive, znorm_paa
from repro.sax.znorm import znorm

values_strategy = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def series_and_paa_size(draw):
    n = draw(st.integers(2, 80))
    w = draw(st.integers(1, n))
    data = draw(arrays(np.float64, n, elements=values_strategy))
    return data, w


class TestPaaReference:
    def test_whole_series_mean_when_w1(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        assert paa_naive(data, 1) == pytest.approx([2.5])

    def test_identity_when_w_equals_n(self):
        data = np.array([3.0, -1.0, 2.0])
        assert np.allclose(paa_naive(data, 3), data)

    def test_divisible_segments(self):
        data = np.array([1.0, 3.0, 5.0, 7.0])
        assert np.allclose(paa_naive(data, 2), [2.0, 6.0])

    def test_fractional_boundary(self):
        # n=3, w=2: segment 1 = x0 + x1/2, segment 2 = x1/2 + x2 (each / 1.5)
        data = np.array([0.0, 3.0, 6.0])
        expected = [(0.0 + 1.5) / 1.5, (1.5 + 6.0) / 1.5]
        assert np.allclose(paa_naive(data, 2), expected)

    def test_rejects_w_above_n(self):
        with pytest.raises(ValueError, match="exceeds"):
            paa_naive(np.zeros(4), 5)


class TestPaaFastAgainstNaive:
    @given(series_and_paa_size())
    def test_paa_equals_naive(self, case):
        data, w = case
        assert np.allclose(paa(data, w), paa_naive(data, w), atol=1e-8)

    @given(series_and_paa_size())
    def test_mean_preserved(self, case):
        """The weighted mean of PAA coefficients equals the series mean."""
        data, w = case
        coefficients = paa(data, w)
        assert coefficients.mean() == pytest.approx(data.mean(), abs=1e-6)


class TestCumulativeStats:
    def test_subsequence_sum(self, rng):
        series = rng.standard_normal(50)
        stats = CumulativeStats(series)
        assert stats.subsequence_sum(5, 20) == pytest.approx(series[5:20].sum())

    def test_mean_std_matches_numpy(self, rng):
        series = rng.standard_normal(100)
        stats = CumulativeStats(series)
        for start, stop in [(0, 10), (20, 90), (99, 100), (0, 100)]:
            mean, std = stats.mean_std(start, stop)
            segment = series[start:stop]
            assert mean == pytest.approx(segment.mean(), abs=1e-9)
            expected_std = segment.std(ddof=1) if len(segment) > 1 else 0.0
            assert std == pytest.approx(expected_std, abs=1e-9)

    def test_empty_subsequence_rejected(self):
        stats = CumulativeStats(np.arange(10.0))
        with pytest.raises(ValueError, match="empty"):
            stats.mean_std(5, 5)

    def test_len(self):
        assert len(CumulativeStats(np.arange(7.0))) == 7

    def test_fast_paa_matches_znorm_paa(self, rng):
        series = np.cumsum(rng.standard_normal(200))
        stats = CumulativeStats(series)
        for start, n, w in [(0, 50, 5), (30, 64, 8), (100, 100, 7), (150, 50, 50)]:
            fast = stats.fast_paa(start, n, w)
            reference = znorm_paa(series[start : start + n], w)
            assert np.allclose(fast, reference, atol=1e-8), (start, n, w)

    def test_fast_paa_constant_window_is_zero(self):
        series = np.concatenate([np.full(30, 2.0), np.arange(20.0)])
        stats = CumulativeStats(series)
        assert np.allclose(stats.fast_paa(0, 20, 4), 0.0)

    def test_sliding_means_stds(self, rng):
        series = rng.standard_normal(60)
        stats = CumulativeStats(series)
        means, stds = stats.sliding_means_stds(12)
        assert len(means) == 49
        for p in [0, 17, 48]:
            assert means[p] == pytest.approx(series[p : p + 12].mean(), abs=1e-9)
            assert stds[p] == pytest.approx(series[p : p + 12].std(ddof=1), abs=1e-9)

    def test_sliding_paa_matrix_rows_match_fast_paa(self, rng):
        series = np.cumsum(rng.standard_normal(120))
        stats = CumulativeStats(series)
        matrix = stats.sliding_paa_matrix(30, 6)
        assert matrix.shape == (91, 6)
        for p in [0, 13, 55, 90]:
            assert np.allclose(matrix[p], stats.fast_paa(p, 30, 6), atol=1e-10)

    def test_sliding_paa_matrix_window_equals_series(self, rng):
        series = rng.standard_normal(40)
        stats = CumulativeStats(series)
        matrix = stats.sliding_paa_matrix(40, 10)
        assert matrix.shape == (1, 10)
        assert np.allclose(matrix[0], znorm_paa(series, 10), atol=1e-8)


class TestFastPaaProperty:
    @given(
        arrays(np.float64, st.integers(30, 120), elements=values_strategy),
        st.integers(4, 25),
        st.integers(1, 20),
    )
    def test_every_window_matches_reference(self, series, window, paa_size):
        window = min(window, len(series))
        paa_size = min(paa_size, window)
        stats = CumulativeStats(series)
        matrix = stats.sliding_paa_matrix(window, paa_size)
        # Prefix-sum cancellation error scales with the *global* magnitude,
        # so windows whose own variation is small relative to it are
        # ill-conditioned by construction and outside the contract (the
        # dedicated constant-window unit test covers the guard behaviour).
        scale = max(1.0, float(np.abs(series).max()))
        for p in np.linspace(0, len(series) - window, 4).astype(int):
            segment = series[p : p + window]
            if segment.std(ddof=1) < 1e-6 * scale:
                continue
            reference = paa_naive(znorm(segment), paa_size)
            assert np.allclose(matrix[p], reference, atol=1e-6)
