"""Unit tests for repro.core.anomaly (records + candidate extraction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.anomaly import Anomaly, extract_candidates, windowed_means


class TestAnomalyRecord:
    def test_end(self):
        assert Anomaly(position=10, length=5, score=1.0, rank=1).end == 15

    def test_overlap_detection(self):
        a = Anomaly(position=0, length=10, score=1.0, rank=1)
        b = Anomaly(position=9, length=10, score=0.5, rank=2)
        c = Anomaly(position=10, length=10, score=0.2, rank=3)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            Anomaly(position=-1, length=5, score=0.0, rank=1)
        with pytest.raises(ValueError):
            Anomaly(position=0, length=0, score=0.0, rank=1)
        with pytest.raises(ValueError):
            Anomaly(position=0, length=5, score=0.0, rank=0)


class TestWindowedMeans:
    def test_matches_naive(self, rng):
        curve = rng.standard_normal(40)
        means = windowed_means(curve, 7)
        assert len(means) == 34
        for p in [0, 15, 33]:
            assert means[p] == pytest.approx(curve[p : p + 7].mean(), abs=1e-9)

    def test_window_equal_length(self):
        curve = np.array([1.0, 2.0, 3.0])
        assert windowed_means(curve, 3) == pytest.approx([2.0])

    @given(arrays(np.float64, st.integers(10, 60), elements=st.floats(-10, 10, allow_nan=False)))
    def test_bounds(self, curve):
        means = windowed_means(curve, 5)
        assert means.min() >= curve.min() - 1e-9
        assert means.max() <= curve.max() + 1e-9


class TestExtractCandidates:
    def test_finds_global_minimum_plateau(self):
        curve = np.full(100, 10.0)
        curve[40:50] = 0.0
        candidates = extract_candidates(curve, window=10, k=1)
        assert candidates[0].position == 40

    def test_candidates_non_overlapping(self):
        curve = np.full(200, 10.0)
        curve[20:30] = 0.0
        curve[100:110] = 1.0
        candidates = extract_candidates(curve, window=10, k=3)
        for i, a in enumerate(candidates):
            for b in candidates[i + 1 :]:
                assert not a.overlaps(b)

    def test_ranks_by_ascending_density(self):
        curve = np.full(200, 10.0)
        curve[20:30] = 0.0
        curve[100:110] = 2.0
        candidates = extract_candidates(curve, window=10, k=2)
        assert candidates[0].position == 20
        assert candidates[1].position == 100
        assert candidates[0].rank == 1
        assert candidates[1].rank == 2

    def test_score_is_negated_mean_when_minimizing(self):
        curve = np.full(50, 4.0)
        candidates = extract_candidates(curve, window=10, k=1)
        assert candidates[0].score == pytest.approx(-4.0)

    def test_maximize_mode(self):
        curve = np.zeros(100)
        curve[60:70] = 5.0
        candidates = extract_candidates(curve, window=10, k=1, minimize=False)
        assert 51 <= candidates[0].position <= 69
        assert candidates[0].score > 0

    def test_fewer_candidates_when_series_short(self):
        curve = np.arange(25.0)
        candidates = extract_candidates(curve, window=10, k=5)
        # Only two disjoint windows of length 10 fit in 25 points.
        assert len(candidates) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="positive"):
            extract_candidates(np.zeros(20), window=5, k=0)

    def test_window_exceeds_curve(self):
        with pytest.raises(ValueError, match="exceeds"):
            extract_candidates(np.zeros(5), window=10, k=1)

    @given(
        arrays(np.float64, st.integers(30, 120), elements=st.floats(0, 100, allow_nan=False)),
        st.integers(2, 15),
        st.integers(1, 5),
    )
    def test_rank_order_and_disjointness_properties(self, curve, window, k):
        window = min(window, len(curve))
        candidates = extract_candidates(curve, window, k)
        assert 1 <= len(candidates) <= k
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)
        for i, a in enumerate(candidates):
            for b in candidates[i + 1 :]:
                assert not a.overlaps(b)
