"""Consistent-hash routing, failover, and migration across serve nodes.

Unit layer: :class:`repro.service.router.HashRing` placement properties
(determinism, full preference walks, balance, minimal disruption when a
node leaves) and tenant extraction.

End-to-end layer (subprocess fleet — two ``python -m repro serve`` nodes
sharing a snapshot directory behind one ``python -m repro router``): the
router's ``/v1`` surface, ring-home placement, migration, per-tenant
quotas, and the headline contract — SIGKILL the node that owns a live
session mid-stream and the resumed detections are bitwise identical to a
session that never saw a crash.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.service import ServiceClient, ServiceClientError
from repro.service.router import DEFAULT_REPLICAS, HashRing, tenant_of

CONFIG = dict(window=40, ensemble_size=4, max_paa_size=5, max_alphabet_size=5)

SERVE_BANNER = re.compile(r"serving on http://127\.0\.0\.1:(\d+)")
ROUTER_BANNER = re.compile(r"routing on http://127\.0\.0\.1:(\d+)")


def make_series(seed: int, n: int = 900) -> list[float]:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 18.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 50] *= 0.2
    return [float(v) for v in series]


# ----------------------------------------------------------------------
# Subprocess harness.
# ----------------------------------------------------------------------


def _spawn(args: list[str], banner: re.Pattern) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError(f"{args[0]} exited before binding")
        match = banner.search(line or "")
        if match:
            return process, int(match.group(1))
    process.kill()
    raise RuntimeError(f"{args[0]} did not start within 60s")


def stop(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


def start_fleet(snapshot_dir: str, *router_args: str) -> dict:
    """Two serve nodes sharing a snapshot dir, one router in front."""
    nodes, processes = [], []
    try:
        for node_id in ("n1", "n2"):
            process, port = _spawn(
                [
                    "serve", "--port", "0",
                    "--snapshot-dir", snapshot_dir,
                    "--snapshot-every", "200",
                    "--node-id", node_id,
                ],
                SERVE_BANNER,
            )
            processes.append(process)
            nodes.append(f"127.0.0.1:{port}")
        router, router_port = _spawn(
            ["router", "--port", "0", "--nodes", ",".join(nodes), *router_args],
            ROUTER_BANNER,
        )
        processes.append(router)
    except BaseException:
        for process in processes:
            process.kill()
        raise
    return {
        "nodes": nodes,
        "node_processes": dict(zip(nodes, processes[:2])),
        "router": router,
        "port": router_port,
        "client": ServiceClient(f"http://127.0.0.1:{router_port}"),
    }


def stop_fleet(fleet: dict) -> None:
    stop(fleet["router"])
    for process in fleet["node_processes"].values():
        stop(process)


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    running = start_fleet(str(tmp_path_factory.mktemp("snapshots")))
    yield running
    stop_fleet(running)


# ----------------------------------------------------------------------
# HashRing / tenant units.
# ----------------------------------------------------------------------


class TestHashRing:
    NODES = ["10.0.0.1:8765", "10.0.0.2:8765", "10.0.0.3:8765", "10.0.0.4:8765"]

    def test_placement_is_deterministic_across_instances(self):
        a, b = HashRing(self.NODES), HashRing(list(reversed(self.NODES)))
        for i in range(200):
            assert a.place(f"tenant.session-{i}") == b.place(f"tenant.session-{i}")

    def test_preference_is_a_permutation_starting_at_home(self):
        ring = HashRing(self.NODES)
        for i in range(50):
            walk = ring.preference(f"key-{i}")
            assert sorted(walk) == sorted(self.NODES)  # every node, once
            assert walk[0] == ring.place(f"key-{i}")

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(self.NODES)
        counts = {node: 0 for node in self.NODES}
        for i in range(2000):
            counts[ring.place(f"session-{i}")] += 1
        for node, count in counts.items():
            assert count > 2000 / len(self.NODES) / 2, (node, counts)

    def test_removing_a_node_only_moves_its_own_keys(self):
        """The consistency in consistent hashing."""
        full = HashRing(self.NODES)
        survivor_ring = HashRing(self.NODES[:-1])
        lost = self.NODES[-1]
        moved = 0
        for i in range(1000):
            key = f"session-{i}"
            if full.place(key) == lost:
                moved += 1
                # The key lands exactly where its preference walk said.
                fallback = next(n for n in full.preference(key) if n != lost)
                assert survivor_ring.place(key) == fallback
            else:
                assert survivor_ring.place(key) == full.place(key)
        assert 0 < moved < 1000  # the lost node owned some, not all

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing([])
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["a:1"], replicas=0)
        assert HashRing(["a:1", "a:1"]).nodes == ["a:1"]
        assert HashRing(["a:1"]).replicas == DEFAULT_REPLICAS


class TestTenantOf:
    def test_prefix_before_first_dot(self):
        assert tenant_of("acme.feed") == "acme"
        assert tenant_of("acme.region.feed") == "acme"
        assert tenant_of("solo") == "solo"


# ----------------------------------------------------------------------
# End-to-end: the fleet.
# ----------------------------------------------------------------------


class TestRouterSurface:
    def test_healthz_identifies_the_router(self, fleet):
        body = fleet["client"].healthz()
        assert body["role"] == "router"

    def test_nodes_lists_the_fleet(self, fleet):
        nodes = fleet["client"].nodes()
        assert sorted(node["node"] for node in nodes) == sorted(fleet["nodes"])
        assert all(node["alive"] and node["role"] == "serve" for node in nodes)

    def test_detects_are_proxied(self, fleet):
        client = fleet["client"]
        before = client.stats()["proxied"]
        result = client.detect(make_series(1, 400), k=2, seed=1, **CONFIG)
        assert len(result["anomalies"]) == 2
        assert client.stats()["proxied"] == before + 1

    def test_create_places_on_the_ring_home(self, fleet):
        client = fleet["client"]
        client.create_session("place.check", seed=2, **CONFIG)
        try:
            placements = client.stats()["placements"]
            assert placements["place.check"] == HashRing(fleet["nodes"]).place("place.check")
        finally:
            client.close_session("place.check")

    def test_close_forgets_the_placement(self, fleet):
        client = fleet["client"]
        client.create_session("bye.now", **CONFIG)
        client.close_session("bye.now")
        assert "bye.now" not in client.stats()["placements"]
        # The name is immediately reusable through the router.
        client.create_session("bye.now", **CONFIG)
        client.close_session("bye.now")

    def test_proxied_session_is_bitwise_identical_to_direct(self, fleet):
        from repro.core.streaming import StreamingEnsembleDetector

        client = fleet["client"]
        feed = make_series(3)
        client.create_session("parity.feed", seed=3, **CONFIG)
        try:
            for offset in range(0, len(feed), 300):
                client.append("parity.feed", feed[offset : offset + 300])
            served = client.anomalies("parity.feed", k=3)["anomalies"]
            direct = StreamingEnsembleDetector(seed=3, **CONFIG)
            direct.extend(feed)
            expected = [
                (a.rank, a.position, a.length, a.score) for a in direct.detect(3)
            ]
            assert [
                (a["rank"], a["position"], a["length"], a["score"]) for a in served
            ] == expected
        finally:
            client.close_session("parity.feed")

    def test_migration_preserves_the_stream(self, fleet):
        client = fleet["client"]
        feed = make_series(4)
        client.create_session("move.me", seed=4, **CONFIG)
        try:
            client.append("move.me", feed[:500])
            reference = client.anomalies("move.me", k=3)["anomalies"]
            source = client.stats()["placements"]["move.me"]
            target = next(node for node in fleet["nodes"] if node != source)

            moved = client.migrate("move.me", target)
            assert moved["node"] == target and moved["migrated"] is True
            assert client.stats()["placements"]["move.me"] == target
            assert client.stats()["migrations"] >= 1
            # Same detections on the new node, and the stream keeps going.
            assert client.anomalies("move.me", k=3)["anomalies"] == reference
            client.append("move.me", feed[500:])
            assert client.anomalies("move.me", k=3)["length"] == len(feed)
        finally:
            client.close_session("move.me")

    def test_migrate_to_unknown_node_is_rejected(self, fleet):
        client = fleet["client"]
        client.create_session("stay.put", **CONFIG)
        try:
            with pytest.raises(ServiceClientError) as excinfo:
                client.migrate("stay.put", "127.0.0.1:1")
            assert excinfo.value.status == 400
        finally:
            client.close_session("stay.put")


class TestTenantQuota:
    def test_quota_is_enforced_per_tenant(self, fleet, tmp_path):
        router, port = _spawn(
            [
                "router", "--port", "0",
                "--nodes", ",".join(fleet["nodes"]),
                "--tenant-quota", "1",
            ],
            ROUTER_BANNER,
        )
        client = ServiceClient(f"http://127.0.0.1:{port}")
        try:
            client.create_session("quota.one", **CONFIG)
            with pytest.raises(ServiceClientError) as excinfo:
                client.create_session("quota.two", **CONFIG)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "tenant-quota-exceeded"
            # A different tenant is unaffected.
            client.create_session("other.one", **CONFIG)
            # Closing frees the slot.
            client.close_session("quota.one")
            client.create_session("quota.two", **CONFIG)
            client.close_session("quota.two")
            client.close_session("other.one")
        finally:
            stop(router)


class TestFailover:
    def test_sigkill_mid_stream_is_bitwise_invisible(self, tmp_path):
        """Kill the owning node between chunks; detections must not change."""
        fleet = start_fleet(str(tmp_path / "snapshots"))
        try:
            client = fleet["client"]
            feed = make_series(11, 1200)
            client.create_session("acme.feed", seed=11, **CONFIG)
            chunks = [feed[i : i + 150] for i in range(0, len(feed), 150)]
            for index, chunk in enumerate(chunks):
                if index == 4:
                    victim_addr = client.stats()["placements"]["acme.feed"]
                    victim = fleet["node_processes"][victim_addr]
                    victim.send_signal(signal.SIGKILL)
                    victim.wait(timeout=30)
                client.append("acme.feed", chunk)
            resumed = client.anomalies("acme.feed", k=5)["anomalies"]

            stats = client.stats()
            assert stats["recoveries"] == 1
            assert stats["placements"]["acme.feed"] != victim_addr
            assert stats["tail_points"] == 0  # checkpoints caught back up

            # Witness: same stream, never interrupted (lands on the
            # survivor — the router skips dead nodes on create).
            client.create_session("witness.feed", seed=11, **CONFIG)
            client.append("witness.feed", feed)
            uninterrupted = client.anomalies("witness.feed", k=5)["anomalies"]
            assert resumed == uninterrupted

            # The fleet view reflects the loss.
            alive = {node["node"]: node["alive"] for node in client.nodes()}
            assert alive[victim_addr] is False
            assert sum(alive.values()) == 1
        finally:
            stop_fleet(fleet)
