"""The metrics core: counters/gauges/histograms, exposition, stats adapter.

Golden-output tests pin the Prometheus text format (``# HELP``/``# TYPE``
headers, label escaping, cumulative histogram buckets ending at
``+Inf``), a threaded hammer proves updates take the family lock, and
:func:`repro.obs.metrics.stats_families` is checked against the shapes
the serving layer's ``stats()`` dicts actually produce (nested dicts,
booleans, maps keyed by ``host:port``).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.expfmt import EXPOSITION_CONTENT_TYPE, render, render_registry
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    stats_families,
)

# ----------------------------------------------------------------------
# Families and children.
# ----------------------------------------------------------------------


def test_counter_increments_and_rejects_decrease():
    counter = Counter("c_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="only increase"):
        counter.inc(-1)


def test_labeled_family_hands_out_one_child_per_tuple():
    counter = Counter("requests_total", labelnames=("method", "path"))
    counter.labels("GET", "/a").inc()
    counter.labels("GET", "/a").inc()
    counter.labels("POST", "/a").inc()
    assert counter.labels("GET", "/a").value == 2
    assert counter.labels("POST", "/a").value == 1
    with pytest.raises(ValueError, match="2 label"):
        counter.labels("GET")
    # The bare family cannot be updated directly.
    with pytest.raises(ValueError, match="call .labels"):
        counter.inc()


def test_gauge_set_inc_dec_and_callback():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 4
    gauge.set_function(lambda: 17.5)
    assert gauge.value == 17.5


def test_histogram_bucket_assignment_le_semantics():
    histogram = Histogram("h", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
        histogram.observe(value)
    counts, total, count = histogram.snapshot()
    # le semantics: a value equal to a bound lands in that bound's bucket.
    assert counts == [2, 2, 1, 1]
    assert count == 6
    assert total == pytest.approx(106.65)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError, match="sorted and distinct"):
        Histogram("h", buckets=(1.0, 0.5))
    with pytest.raises(ValueError, match="sorted and distinct"):
        Histogram("h", buckets=(1.0, 1.0))


def test_labeled_histogram_children_share_buckets():
    histogram = Histogram("h", labelnames=("stage",), buckets=(0.5, 1.0))
    histogram.labels("a").observe(0.7)
    counts, _, count = histogram.labels("a").snapshot()
    assert counts == [0, 1, 0]
    assert count == 1


def test_invalid_names_rejected():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("2bad")
    with pytest.raises(ValueError, match="invalid label name"):
        Counter("ok", labelnames=("le gal",))
    with pytest.raises(ValueError, match="duplicate label"):
        Counter("ok", labelnames=("a", "a"))


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------


def test_registry_get_or_create_returns_same_family():
    registry = MetricsRegistry()
    first = registry.counter("c_total", "help")
    second = registry.counter("c_total", "other help ignored")
    assert first is second


def test_registry_conflicting_redeclaration_raises():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("m")
    registry.gauge("g", labelnames=("a",))
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("g", labelnames=("b",))


def test_registry_collect_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("zeta")
    registry.counter("alpha")
    assert [family.name for family in registry.collect()] == ["alpha", "zeta"]


def test_counter_thread_hammer_loses_no_increments():
    counter = Counter("hammer_total", labelnames=("worker",))
    child = counter.labels("shared")

    def hit() -> None:
        for _ in range(10_000):
            child.inc()

    threads = [threading.Thread(target=hit) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert child.value == 80_000


# ----------------------------------------------------------------------
# Exposition.
# ----------------------------------------------------------------------


def test_render_golden_counter_and_gauge():
    counter = Counter("requests_total", "Requests served.", labelnames=("path",))
    counter.labels("/v1/detect").inc(3)
    gauge = Gauge("live_sessions", "Live sessions.")
    gauge.set(2)
    assert render([counter, gauge]) == (
        "# HELP requests_total Requests served.\n"
        "# TYPE requests_total counter\n"
        'requests_total{path="/v1/detect"} 3\n'
        "# HELP live_sessions Live sessions.\n"
        "# TYPE live_sessions gauge\n"
        "live_sessions 2\n"
    )


def test_render_histogram_cumulative_buckets_and_inf():
    histogram = Histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(value)
    assert render([histogram]) == (
        "# HELP lat_seconds Latency.\n"
        "# TYPE lat_seconds histogram\n"
        'lat_seconds_bucket{le="0.1"} 1\n'
        'lat_seconds_bucket{le="1"} 3\n'
        'lat_seconds_bucket{le="+Inf"} 4\n'
        "lat_seconds_sum 6.05\n"
        "lat_seconds_count 4\n"
    )


def test_render_escapes_label_values_and_help():
    counter = Counter("c_total", 'tricky \\ help\nsecond line', labelnames=("who",))
    counter.labels('a"b\\c\nd').inc()
    text = render([counter])
    assert '# HELP c_total tricky \\\\ help\\nsecond line' in text
    assert 'c_total{who="a\\"b\\\\c\\nd"} 1' in text


def test_render_skips_help_when_empty():
    counter = Counter("c_total")
    counter.inc()
    assert render([counter]) == "# TYPE c_total counter\nc_total 1\n"


def test_render_registry_appends_extras():
    registry = MetricsRegistry()
    registry.counter("a_total").inc()
    extra = Gauge("z_extra")
    extra.set(1)
    text = render_registry(registry, [extra])
    assert "a_total 1" in text
    assert "z_extra 1" in text


def test_exposition_content_type_is_prometheus_text():
    assert EXPOSITION_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_default_latency_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


# ----------------------------------------------------------------------
# The stats() adapter.
# ----------------------------------------------------------------------


def test_stats_families_flattens_nested_numbers_and_bools():
    stats = {
        "batcher": {"dispatched": 7, "mean_batch_size": 2.5},
        "cache": {"hits": 3, "enabled": True},
        "node_id": "node",  # strings are skipped
        "idle": None,  # None is skipped
    }
    families = stats_families("repro_service", stats)
    values = {family.name: family.value for family in families if not family.labelnames}
    assert values == {
        "repro_service_batcher_dispatched": 7.0,
        "repro_service_batcher_mean_batch_size": 2.5,
        "repro_service_cache_hits": 3.0,
        "repro_service_cache_enabled": 1.0,
    }


def test_stats_families_unsafe_keys_become_labeled_gauge():
    families = stats_families(
        "repro_router", {"nodes": {"127.0.0.1:8001": 2, "127.0.0.1:8002": 0}}
    )
    (family,) = families
    assert family.name == "repro_router_nodes"
    assert family.labelnames == ("key",)
    text = render(families)
    assert 'repro_router_nodes{key="127.0.0.1:8001"} 2' in text
    assert 'repro_router_nodes{key="127.0.0.1:8002"} 0' in text


def test_stats_families_rejects_bad_prefix():
    with pytest.raises(ValueError, match="invalid metric name"):
        stats_families("1bad", {})
