"""Unit tests for repro.grammar.motifs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grammar.motifs import Motif, discover_motifs, motifs_from_grammar
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import numerosity_reduction


@pytest.fixture
def periodic_series() -> np.ndarray:
    """20 repetitions of one cycle — a dense motif landscape."""
    return np.tile(np.sin(np.linspace(0, 2 * np.pi, 100, endpoint=False)), 20)


class TestMotifRecord:
    def test_count_and_mean_length(self):
        motif = Motif(1, ((0, 9), (20, 31)), word_length=3)
        assert motif.count == 2
        assert motif.mean_length == pytest.approx((10 + 12) / 2)

    def test_single_occurrence_rejected(self):
        with pytest.raises(ValueError, match="two occurrences"):
            Motif(1, ((0, 9),), word_length=3)


class TestMotifsFromGrammar:
    def _build(self, words, window, length):
        tokens = numerosity_reduction(words, window)
        grammar = induce_grammar(list(tokens.words))
        return grammar, tokens, length

    def test_repeating_block_found(self):
        words = ["aa", "bb", "cc", "aa", "bb", "cc", "aa", "bb", "cc", "xy"]
        grammar, tokens, length = self._build(words, 2, 11)
        motifs = motifs_from_grammar(grammar, tokens, length)
        assert motifs
        top = motifs[0]
        assert top.count >= 2
        # The motif instances spell the repeating block.
        assert (0, 3) in top.occurrences or (0, 6) in top.occurrences

    def test_sorted_by_count_then_length(self):
        words = ["aa", "bb"] * 6 + ["cc", "dd", "ee", "cc", "dd", "ee"]
        grammar, tokens, length = self._build(words, 2, 19)
        motifs = motifs_from_grammar(grammar, tokens, length)
        counts = [m.count for m in motifs]
        assert counts == sorted(counts, reverse=True)

    def test_min_token_length_filter(self):
        words = ["aa", "bb"] * 6
        grammar, tokens, length = self._build(words, 2, 13)
        long_only = motifs_from_grammar(grammar, tokens, length, min_token_length=4)
        assert all(m.word_length >= 4 for m in long_only)

    def test_no_motifs_in_incompressible_sequence(self):
        words = ["aa", "bb", "cc", "dd", "ee", "ff"]
        grammar, tokens, length = self._build(words, 2, 7)
        assert motifs_from_grammar(grammar, tokens, length) == []


class TestDiscoverMotifs:
    def test_finds_cycle_motif(self, periodic_series):
        motifs = discover_motifs(
            periodic_series, window=100, paa_size=5, alphabet_size=4
        )
        assert motifs
        assert motifs[0].count >= 4

    def test_k_limits_output(self, periodic_series):
        motifs = discover_motifs(
            periodic_series, window=100, paa_size=5, alphabet_size=4, k=2
        )
        assert len(motifs) <= 2

    def test_occurrences_lie_within_series(self, periodic_series):
        motifs = discover_motifs(periodic_series, window=100, paa_size=5, alphabet_size=4)
        for motif in motifs:
            for start, end in motif.occurrences:
                assert 0 <= start <= end < len(periodic_series)

    def test_motif_instances_similar_shapes(self, periodic_series):
        """Instances of the top motif are near-identical subsequences."""
        from repro.sax.znorm import znorm

        motifs = discover_motifs(periodic_series, window=100, paa_size=5, alphabet_size=4)
        top = motifs[0]
        (s1, e1), (s2, e2) = top.occurrences[0], top.occurrences[1]
        length = min(e1 - s1, e2 - s2) + 1
        a = znorm(periodic_series[s1 : s1 + length])
        b = znorm(periodic_series[s2 : s2 + length])
        assert float(np.linalg.norm(a - b)) / np.sqrt(length) < 0.5

    def test_invalid_k(self, periodic_series):
        with pytest.raises(ValueError, match="positive"):
            discover_motifs(periodic_series, window=100, k=0)
