"""Unit tests for repro.core.detector (single-run GI anomaly detection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly
from repro.core.detector import GrammarAnomalyDetector


@pytest.fixture
def frequency_anomaly_series() -> tuple[np.ndarray, int, int]:
    """40 sine cycles with one frequency-doubled cycle planted mid-series."""
    series = np.sin(np.linspace(0, 80 * np.pi, 4000))
    series[2000:2100] = np.sin(np.linspace(0, 8 * np.pi, 100))
    return series, 2000, 100


class TestConstruction:
    def test_defaults_are_gi_fix_values(self):
        detector = GrammarAnomalyDetector(window=50)
        assert detector.paa_size == 4
        assert detector.alphabet_size == 4

    def test_repr_mentions_parameters(self):
        detector = GrammarAnomalyDetector(window=50, paa_size=6, alphabet_size=3)
        assert "paa_size=6" in repr(detector)

    def test_invalid_window(self):
        with pytest.raises(ValueError, match="at least 2"):
            GrammarAnomalyDetector(window=1)

    def test_paa_size_above_window_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            GrammarAnomalyDetector(window=4, paa_size=5)


class TestPipelineStages:
    def test_tokenize_produces_reduced_tokens(self, frequency_anomaly_series):
        series, _, _ = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        tokens = detector.tokenize(series)
        assert 0 < len(tokens) < len(series)
        assert tokens.window == 100

    def test_grammar_compresses_periodic_series(self, frequency_anomaly_series):
        series, _, _ = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        grammar = detector.grammar(series)
        assert grammar.n_rules > 1  # periodic data yields repeating rules

    def test_density_curve_length(self, frequency_anomaly_series):
        series, _, _ = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100)
        curve = detector.density_curve(series)
        assert len(curve) == len(series)
        assert np.all(curve >= 0)

    def test_density_low_at_anomaly(self, frequency_anomaly_series):
        series, position, length = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        curve = detector.density_curve(series)
        anomaly_mean = curve[position : position + length].mean()
        assert anomaly_mean < 0.5 * curve.mean()


class TestDetection:
    def test_detects_planted_anomaly(self, frequency_anomaly_series):
        series, position, length = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100, paa_size=5, alphabet_size=5)
        anomalies = detector.detect(series, k=3)
        assert any(
            abs(a.position - position) <= length for a in anomalies
        ), [a.position for a in anomalies]

    def test_returns_at_most_k(self, frequency_anomaly_series):
        series, _, _ = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100)
        assert len(detector.detect(series, k=2)) <= 2

    def test_results_are_anomaly_records(self, frequency_anomaly_series):
        series, _, _ = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100)
        anomalies = detector.detect(series, k=3)
        assert all(isinstance(a, Anomaly) for a in anomalies)
        assert all(a.length == 100 for a in anomalies)

    def test_deterministic(self, frequency_anomaly_series):
        series, _, _ = frequency_anomaly_series
        detector = GrammarAnomalyDetector(window=100, paa_size=6, alphabet_size=4)
        first = detector.detect(series, k=3)
        second = detector.detect(series, k=3)
        assert first == second

    def test_window_larger_than_series_rejected(self):
        detector = GrammarAnomalyDetector(window=100)
        with pytest.raises(ValueError, match="exceeds"):
            detector.detect(np.zeros(50), k=1)

    def test_constant_series_does_not_crash(self):
        detector = GrammarAnomalyDetector(window=10)
        anomalies = detector.detect(np.full(100, 3.0), k=2)
        assert len(anomalies) >= 1  # degenerate but well-defined output

    def test_numerosity_none_mode(self, frequency_anomaly_series):
        series, position, length = frequency_anomaly_series
        detector = GrammarAnomalyDetector(
            window=100, paa_size=5, alphabet_size=5, numerosity="none"
        )
        anomalies = detector.detect(series, k=3)
        assert len(anomalies) >= 1
