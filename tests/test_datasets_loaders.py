"""Unit tests for repro.datasets.loaders (real UCR file support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import RealUCRDataset, load_ucr_file
from repro.datasets.planting import make_test_case


@pytest.fixture
def ucr_file(tmp_path):
    """A small UCR-format file: 3 instances of class 1, 2 of class 2."""
    rows = [
        "1\t" + "\t".join(str(0.1 * i) for i in range(16)),
        "1\t" + "\t".join(str(0.2 * i) for i in range(16)),
        "1\t" + "\t".join(str(0.3 * i) for i in range(16)),
        "2\t" + "\t".join(str(np.sin(i)) for i in range(16)),
        "2\t" + "\t".join(str(np.cos(i)) for i in range(16)),
    ]
    path = tmp_path / "Toy_TRAIN.tsv"
    path.write_text("\n".join(rows) + "\n")
    return path


class TestLoadUcrFile:
    def test_loads_shapes(self, ucr_file):
        dataset = load_ucr_file(ucr_file)
        assert dataset.spec.instance_length == 16
        assert dataset.spec.n_classes == 2
        assert dataset.spec.name == "Toy_TRAIN"

    def test_class_counts(self, ucr_file):
        dataset = load_ucr_file(ucr_file)
        assert dataset.class_counts() == {1: 3, 2: 2}

    def test_explicit_name(self, ucr_file):
        dataset = load_ucr_file(ucr_file, name="Toy")
        assert dataset.spec.name == "Toy"

    def test_comma_separated_accepted(self, tmp_path):
        path = tmp_path / "commas.csv"
        path.write_text("1,0.0,1.0,2.0,3.0,4.0,5.0,6.0,7.0\n2,7.0,6.0,5.0,4.0,3.0,2.0,1.0,0.0\n")
        dataset = load_ucr_file(path)
        assert dataset.spec.instance_length == 8

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ucr_file(tmp_path / "absent.tsv")

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.tsv"
        path.write_text("1\t1.0\t2.0\n2\t1.0\n")
        with pytest.raises(ValueError, match="differing lengths"):
            load_ucr_file(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tfoo\tbar\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_ucr_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no data"):
            load_ucr_file(path)


class TestRealUCRDataset:
    def test_generate_instance_draws_from_class(self, ucr_file):
        dataset = load_ucr_file(ucr_file)
        rng = np.random.default_rng(0)
        instance = dataset.generate_instance(2, rng)
        assert instance.shape == (16,)

    def test_invalid_class(self, ucr_file):
        dataset = load_ucr_file(ucr_file)
        with pytest.raises(ValueError, match="classes"):
            dataset.generate_instance(3, np.random.default_rng(0))

    def test_labels_reindexed_from_arbitrary_values(self):
        instances = np.arange(40.0).reshape(4, 10)
        labels = np.array([7, 7, -1, 3])
        dataset = RealUCRDataset("X", instances, labels)
        # Sorted unique labels (-1, 3, 7) -> classes 1, 2, 3.
        assert dataset.class_counts() == {1: 1, 2: 1, 3: 2}

    def test_works_with_planting_harness(self, ucr_file):
        """The real-data loader satisfies the InstanceSource protocol."""
        dataset = load_ucr_file(ucr_file)
        case = make_test_case(dataset, seed=0)
        assert len(case.series) == 21 * 16
        assert case.gt_length == 16

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="2 classes"):
            RealUCRDataset("X", np.zeros((3, 10)), np.array([1, 1, 1]))
