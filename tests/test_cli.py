"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_detector, build_parser, load_series, main, save_series
from repro.core.ensemble import EnsembleGrammarDetector
from repro.discord.discords import DiscordDetector
from repro.grammar.rra import RRADetector


@pytest.fixture
def series_file(tmp_path):
    series = np.sin(np.linspace(0, 40 * np.pi, 2000))
    series[1000:1100] = np.sin(np.linspace(0, 8 * np.pi, 100))
    path = tmp_path / "series.csv"
    save_series(path, series)
    return path


class TestSeriesIO:
    def test_round_trip(self, tmp_path):
        series = np.array([1.5, -2.25, 3.0])
        path = tmp_path / "x.csv"
        save_series(path, series)
        assert np.allclose(load_series(path), series)

    def test_header_tolerated(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("value\n1.0\n2.0\n")
        assert load_series(path).tolist() == [1.0, 2.0]

    def test_comma_rows_take_first_column(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("1.0,99\n2.0,98\n")
        assert load_series(path).tolist() == [1.0, 2.0]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_series(tmp_path / "absent.csv")

    def test_bad_value_mid_file(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("1.0\nnot-a-number\n")
        with pytest.raises(ValueError, match="not a number"):
            load_series(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("1.0\n")
        with pytest.raises(ValueError, match="at least 2"):
            load_series(path)


class TestBuildDetector:
    def _args(self, **overrides):
        parser = build_parser()
        base = [
            "detect", "--input", "x", "--window", "100", "--method", "ensemble",
        ]
        args = parser.parse_args(base)
        for key, value in overrides.items():
            setattr(args, key, value)
        return args

    def test_ensemble(self):
        detector = build_detector("ensemble", 100, self._args())
        assert isinstance(detector, EnsembleGrammarDetector)

    def test_discord(self):
        assert isinstance(build_detector("discord", 100, self._args()), DiscordDetector)

    def test_rra(self):
        assert isinstance(build_detector("rra", 100, self._args()), RRADetector)

    def test_parameters_forwarded(self):
        args = self._args(wmax=12, amax=8, ensemble_size=7, selectivity=0.2)
        detector = build_detector("ensemble", 100, args)
        assert detector.max_paa_size == 12
        assert detector.max_alphabet_size == 8
        assert detector.ensemble_size == 7
        assert detector.selectivity == 0.2

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            build_detector("nope", 100, self._args())


class TestDetectCommand:
    def test_detect_prints_table_and_writes_json(self, series_file, tmp_path, capsys):
        out = tmp_path / "detections.json"
        code = main(
            [
                "detect", "--input", str(series_file), "--window", "100",
                "--method", "gi", "--paa-size", "5", "--alphabet-size", "5",
                "--json", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "rank" in captured and "position" in captured
        document = json.loads(out.read_text())
        assert document["metadata"]["window"] == 100
        assert len(document["anomalies"]) >= 1
        positions = [a["position"] for a in document["anomalies"]]
        assert any(900 <= p <= 1100 for p in positions)

    def test_detect_csv_output(self, series_file, tmp_path):
        out = tmp_path / "detections.csv"
        code = main(
            [
                "detect", "--input", str(series_file), "--window", "100",
                "--method", "gi-fix", "--csv", str(out),
            ]
        )
        assert code == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "rank,position,length,score"
        assert len(lines) >= 2

    def test_missing_input_is_clean_error(self, tmp_path, capsys):
        code = main(
            ["detect", "--input", str(tmp_path / "nope.csv"), "--window", "10"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def _two_series_files(self, tmp_path):
        first = np.sin(np.linspace(0, 40 * np.pi, 2000))
        first[1000:1100] = np.sin(np.linspace(0, 8 * np.pi, 100))
        second = np.sin(np.linspace(0, 40 * np.pi, 2000))
        second[400:500] = np.sin(np.linspace(0, 8 * np.pi, 100))
        paths = [tmp_path / "first.csv", tmp_path / "second.csv"]
        save_series(paths[0], first)
        save_series(paths[1], second)
        return paths

    def test_batch_detect_multiple_inputs(self, tmp_path, capsys):
        """Several --input files run as one batch: one table per input, in
        input order, and numbered JSON sidecars per series."""
        paths = self._two_series_files(tmp_path)
        out = tmp_path / "out.json"
        code = main(
            [
                "detect", "--input", str(paths[0]), str(paths[1]),
                "--window", "100", "--ensemble-size", "6", "--seed", "3",
                "--json", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        # One table per input, in input order.
        assert captured.index(str(paths[0])) < captured.index(str(paths[1]))
        for index, path in enumerate(paths):
            sidecar = tmp_path / f"out.{index}.json"
            document = json.loads(sidecar.read_text())
            assert document["metadata"]["input"] == str(path)
            assert len(document["anomalies"]) >= 1
        # Results follow their inputs: the planted anomaly of each file is
        # found near its own position, not the other file's.
        first_doc = json.loads((tmp_path / "out.0.json").read_text())
        second_doc = json.loads((tmp_path / "out.1.json").read_text())
        assert any(900 <= a["position"] <= 1100 for a in first_doc["anomalies"])
        assert any(300 <= a["position"] <= 500 for a in second_doc["anomalies"])

    def test_batch_detect_n_jobs_identical_output(self, tmp_path, capsys):
        paths = self._two_series_files(tmp_path)
        base = [
            "detect", "--input", str(paths[0]), str(paths[1]),
            "--window", "100", "--ensemble-size", "6", "--seed", "3",
        ]
        assert main(base + ["--n-jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--n-jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_invalid_n_jobs_is_clean_error(self, series_file, capsys):
        code = main(
            ["detect", "--input", str(series_file), "--window", "100", "--n-jobs", "0"]
        )
        assert code == 2
        assert "n_jobs" in capsys.readouterr().err


class TestGenerateCommand:
    def test_generate_dataset_with_truth(self, tmp_path, capsys):
        out = tmp_path / "case.csv"
        code = main(["generate", "--dataset", "Wafer", "--seed", "3", "--out", str(out)])
        assert code == 0
        series = load_series(out)
        assert len(series) == 21 * 150
        truth = json.loads((tmp_path / "case.truth.json").read_text())
        assert truth[0]["length"] == 150

    @pytest.mark.parametrize("kind", ["rw", "ecg", "eeg"])
    def test_generate_kinds(self, tmp_path, kind):
        out = tmp_path / f"{kind}.csv"
        code = main(["generate", "--kind", kind, "--length", "3000", "--out", str(out)])
        assert code == 0
        assert len(load_series(out)) == 3000

    def test_generate_fridge_has_truth(self, tmp_path):
        out = tmp_path / "fridge.csv"
        code = main(
            ["generate", "--kind", "fridge", "--length", "20000", "--out", str(out)]
        )
        assert code == 0
        truth = json.loads((tmp_path / "fridge.truth.json").read_text())
        assert {t["kind"] for t in truth} == {"distorted-cycle", "spiky-event"}

    def test_generate_without_source_errors(self, tmp_path, capsys):
        code = main(["generate", "--out", str(tmp_path / "x.csv")])
        assert code == 2
        assert "needs --dataset or --kind" in capsys.readouterr().err


class TestEvaluateCommand:
    def test_evaluate_prints_methods(self, capsys, tmp_path):
        out = tmp_path / "eval.json"
        code = main(
            [
                "evaluate", "--dataset", "TwoLeadECG", "--cases", "2",
                "--methods", "gi-fix", "--json", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "gi-fix" in captured
        document = json.loads(out.read_text())
        assert "gi-fix" in document["methods"]
        assert len(document["methods"]["gi-fix"]["scores"]) == 2


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestUnifiedExecutorFlag:
    """Regression tests: one shared --executor parser across subcommands.

    Executor flags used to be wired per subcommand (with argparse
    ``choices`` in some places and ad-hoc strings in others); they are now
    parsed by one helper with a single help string, and unknown names fail
    up front naming every valid choice.
    """

    COMMANDS_WITH_EXECUTOR = ("detect", "stream", "evaluate", "serve")

    def _help_for(self, command: str) -> str:
        parser = build_parser()
        subparsers = parser._subparsers._group_actions[0]
        return subparsers.choices[command].format_help()

    def test_every_subcommand_documents_the_same_backends(self):
        for command in self.COMMANDS_WITH_EXECUTOR:
            text = self._help_for(command)
            assert "--executor" in text
            assert "--scheduler" in text
            for backend in ("serial", "thread", "process", "cluster"):
                assert f"'{backend}'" in text, (command, backend)

    def test_executor_help_identical_across_subcommands(self):
        from repro.cli import EXECUTOR_HELP

        for command in self.COMMANDS_WITH_EXECUTOR:
            parser = build_parser()
            sub = parser._subparsers._group_actions[0].choices[command]
            actions = {a.dest: a for a in sub._actions}
            assert actions["executor"].help == EXECUTOR_HELP, command

    def test_unknown_executor_rejected_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["detect", "--input", "x.csv", "--window", "10",
                  "--executor", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown executor 'bogus'" in err
        for backend in ("serial", "thread", "process", "cluster"):
            assert backend in err

    def test_unknown_executor_rejected_on_every_subcommand(self, capsys):
        cases = {
            "detect": ["detect", "--input", "x.csv", "--window", "10"],
            "stream": ["stream", "--input", "x.csv", "--window", "10"],
            "evaluate": ["evaluate", "--dataset", "Wafer"],
            "serve": ["serve"],
        }
        for command in self.COMMANDS_WITH_EXECUTOR:
            with pytest.raises(SystemExit) as excinfo:
                main(cases[command] + ["--executor", "nope"])
            assert excinfo.value.code == 2, command
            assert "unknown executor" in capsys.readouterr().err, command

    def test_scheduler_without_cluster_is_clean_error(self, series_file, capsys):
        code = main(
            ["detect", "--input", str(series_file), "--window", "100",
             "--executor", "process", "--scheduler", "127.0.0.1:9"]
        )
        assert code == 2
        assert "--scheduler requires --executor cluster" in capsys.readouterr().err

    def test_scheduler_without_executor_is_clean_error(self, series_file, capsys):
        code = main(
            ["detect", "--input", str(series_file), "--window", "100",
             "--scheduler", "127.0.0.1:9"]
        )
        assert code == 2
        assert "--scheduler requires --executor cluster" in capsys.readouterr().err

    def test_worker_subcommand_in_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "worker" in capsys.readouterr().out

    def test_detect_with_cluster_executor_matches_serial(self, tmp_path, capsys):
        """End to end through the CLI: a localhost cluster batch is bitwise
        identical to the serial run of the same command."""
        first = np.sin(np.linspace(0, 30 * np.pi, 1200))
        first[600:660] = np.sin(np.linspace(0, 6 * np.pi, 60))
        second = np.sin(np.linspace(0, 30 * np.pi, 1200))
        second[300:360] = np.sin(np.linspace(0, 6 * np.pi, 60))
        paths = [tmp_path / "a.csv", tmp_path / "b.csv"]
        save_series(paths[0], first)
        save_series(paths[1], second)
        base = [
            "detect", "--input", str(paths[0]), str(paths[1]),
            "--window", "60", "--ensemble-size", "5", "--seed", "2",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--executor", "cluster", "--n-jobs", "2"]) == 0
        clustered = capsys.readouterr().out
        assert clustered == serial


class TestStreamCommand:
    def _feed_file(self, tmp_path, length=6000, anomaly_at=5200):
        series = np.sin(np.linspace(0, 40 * np.pi * length / 2000, length))
        series[anomaly_at : anomaly_at + 100] = np.sin(np.linspace(0, 8 * np.pi, 100))
        path = tmp_path / "feed.csv"
        save_series(path, series)
        return path

    def test_stream_bounded_reports_absolute_positions(self, tmp_path, capsys):
        path = self._feed_file(tmp_path)
        out = tmp_path / "stream.json"
        code = main(
            [
                "stream", "--input", str(path), "--window", "100",
                "--stream-capacity", "2000", "--eviction-policy", "sliding",
                "--chunk-size", "512", "--ensemble-size", "6", "--seed", "1",
                "--json", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "live range [4000, 6000)" in captured
        document = json.loads(out.read_text())
        assert document["metadata"]["stream_capacity"] == 2000
        assert document["metadata"]["eviction_policy"] == "sliding"
        assert document["metadata"]["horizon_start"] == 4000
        # Positions are absolute stream indices inside the live horizon.
        for anomaly in document["anomalies"]:
            assert 4000 <= anomaly["position"] < 6000
        assert any(
            5100 <= a["position"] <= 5300 for a in document["anomalies"]
        )

    def test_stream_decay_policy_runs(self, tmp_path, capsys):
        path = self._feed_file(tmp_path)
        code = main(
            [
                "stream", "--input", str(path), "--window", "100",
                "--stream-capacity", "2000", "--eviction-policy", "decay",
                "--ensemble-size", "5", "--seed", "0",
            ]
        )
        assert code == 0
        assert "decay eviction" in capsys.readouterr().out

    def test_stream_unbounded_by_default(self, tmp_path, capsys):
        path = self._feed_file(tmp_path, length=3000, anomaly_at=2000)
        code = main(
            [
                "stream", "--input", str(path), "--window", "100",
                "--ensemble-size", "5", "--seed", "0",
            ]
        )
        assert code == 0
        assert "live range [0, 3000)" in capsys.readouterr().out

    def test_stream_capacity_below_window_is_clean_error(self, tmp_path, capsys):
        path = self._feed_file(tmp_path, length=3000, anomaly_at=2000)
        code = main(
            [
                "stream", "--input", str(path), "--window", "100",
                "--stream-capacity", "50",
            ]
        )
        assert code == 2
        assert "smaller than one window" in capsys.readouterr().err

    def test_stream_rejects_bad_chunk_size(self, tmp_path, capsys):
        path = self._feed_file(tmp_path, length=3000, anomaly_at=2000)
        code = main(
            ["stream", "--input", str(path), "--window", "100", "--chunk-size", "0"]
        )
        assert code == 2
        assert "chunk-size" in capsys.readouterr().err


class TestExecutorLifecycle:
    """CLI-created pools must die on every path — especially failing ones.

    Regression tests for leaked ``/dev/shm`` segments when an input fails
    mid-batch or mid-stream: the CLI wraps every executor/detector it builds
    in an ``ExitStack``, so a worker exception (or a rejected chunk) still
    releases the pool and every shared-memory segment it published.
    """

    def _series(self, length=1500, anomaly_at=700):
        series = np.sin(np.linspace(0, 30 * np.pi, length))
        series[anomaly_at : anomaly_at + 60] = np.sin(np.linspace(0, 6 * np.pi, 60))
        return series

    def test_failing_batch_leaves_no_shm(self, tmp_path, capsys, shm_segments):
        good = tmp_path / "good.csv"
        save_series(good, self._series())
        bad = tmp_path / "bad.csv"
        bad.write_text("1.0\nnan\n2.0\n" * 200)  # NaN fails inside the worker
        before = shm_segments()
        code = main(
            [
                "detect", "--input", str(good), str(bad), "--window", "60",
                "--method", "ensemble", "--ensemble-size", "4", "--seed", "0",
                "--executor", "process", "--n-jobs", "2",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "bad.csv" in err  # the failing file is named
        assert shm_segments() == before  # no leaked segments on the error path

    def test_failing_batch_without_executor_flag(self, tmp_path, capsys, shm_segments):
        """Same regression via the default n_jobs pool (no --executor)."""
        good = tmp_path / "good.csv"
        save_series(good, self._series())
        bad = tmp_path / "bad.csv"
        save_series(bad, np.arange(10.0))  # far too short for the window
        before = shm_segments()
        code = main(
            [
                "detect", "--input", str(good), str(bad), "--window", "60",
                "--method", "ensemble", "--ensemble-size", "4", "--seed", "0",
                "--n-jobs", "2",
            ]
        )
        assert code == 2
        assert shm_segments() == before

    def test_failing_stream_closes_executor(self, tmp_path, capsys, shm_segments):
        """A chunk rejected mid-stream must tear down the snapshot pool."""
        path = tmp_path / "feed.csv"
        values = [f"{v:.6f}" for v in self._series(1200)]
        values[900] = "nan"  # rejected by the stream state mid-feed
        path.write_text("\n".join(values) + "\n")
        before = shm_segments()
        code = main(
            [
                "stream", "--input", str(path), "--window", "60",
                "--ensemble-size", "4", "--seed", "0",
                "--executor", "process", "--n-jobs", "2",
            ]
        )
        assert code == 2
        assert "finite" in capsys.readouterr().err
        assert shm_segments() == before


class TestPartialBatchFailure:
    """One bad file in a multi-file batch must not abort the others.

    Regression tests for the PR 4 bugfix: `detect` with several --input
    files now emits every successful result, names the failing path(s) on
    stderr, and exits nonzero — instead of discarding the whole batch on
    the first BatchItemError.
    """

    def _write_good(self, path, length=1500):
        series = np.sin(np.linspace(0, 30 * np.pi, length))
        series[700:760] = np.sin(np.linspace(0, 6 * np.pi, 60))
        save_series(path, series)

    def test_corrupt_middle_file_still_reports_neighbours(self, tmp_path, capsys):
        first = tmp_path / "first.csv"
        corrupt = tmp_path / "corrupt.csv"
        last = tmp_path / "last.csv"
        self._write_good(first)
        corrupt.write_text("1.0\nnot-a-number\n2.0\n")
        self._write_good(last)
        code = main(
            [
                "detect", "--input", str(first), str(corrupt), str(last),
                "--window", "60", "--method", "ensemble",
                "--ensemble-size", "4", "--seed", "0",
            ]
        )
        assert code != 0
        captured = capsys.readouterr()
        # Both healthy files were fully reported...
        assert "first.csv" in captured.out
        assert "last.csv" in captured.out
        # ...the corrupt one was named on stderr with its parse error...
        assert "corrupt.csv" in captured.err
        assert "not-a-number" in captured.err
        assert "1 of 3 input file(s) failed" in captured.err
        # ...and never leaked into stdout as a result.
        assert "corrupt.csv" not in captured.out

    def test_worker_failure_mid_batch(self, tmp_path, capsys):
        """A series that loads but fails inside the worker is also contained."""
        good = tmp_path / "good.csv"
        short = tmp_path / "short.csv"
        tail = tmp_path / "tail.csv"
        self._write_good(good)
        save_series(short, np.arange(10.0))  # loads, but window=60 rejects it
        self._write_good(tail)
        code = main(
            [
                "detect", "--input", str(good), str(short), str(tail),
                "--window", "60", "--method", "ensemble",
                "--ensemble-size", "4", "--seed", "0", "--n-jobs", "2",
            ]
        )
        assert code != 0
        captured = capsys.readouterr()
        assert "good.csv" in captured.out
        assert "tail.csv" in captured.out
        assert "short.csv" in captured.err

    def test_partial_failure_with_executor_no_shm_leak(self, tmp_path, capsys, shm_segments):
        good = tmp_path / "good.csv"
        bad = tmp_path / "bad.csv"
        self._write_good(good)
        bad.write_text("1.0\nnan\n2.0\n" * 200)  # NaN fails inside the worker
        before = shm_segments()
        code = main(
            [
                "detect", "--input", str(good), str(bad),
                "--window", "60", "--method", "ensemble",
                "--ensemble-size", "4", "--seed", "0",
                "--executor", "process", "--n-jobs", "2",
            ]
        )
        assert code != 0
        captured = capsys.readouterr()
        assert "good.csv" in captured.out  # the healthy file was reported
        assert "bad.csv" in captured.err
        assert shm_segments() == before

    def test_json_sidecars_written_for_successes_only(self, tmp_path, capsys):
        good = tmp_path / "good.csv"
        bad = tmp_path / "bad.csv"
        self._write_good(good)
        bad.write_text("oops\nnope\n")
        out = tmp_path / "out.json"
        code = main(
            [
                "detect", "--input", str(good), str(bad),
                "--window", "60", "--method", "ensemble",
                "--ensemble-size", "4", "--seed", "0",
                "--json", str(out),
            ]
        )
        assert code != 0
        capsys.readouterr()
        assert (tmp_path / "out.0.json").exists()  # slot 0: the good file
        assert not (tmp_path / "out.1.json").exists()  # slot 1 failed

    def test_single_bad_file_still_hard_fails(self, tmp_path, capsys):
        """With exactly one input the old contract stands: error + exit 2."""
        bad = tmp_path / "bad.csv"
        bad.write_text("1.0\nnot-a-number\n2.0\n")
        code = main(
            ["detect", "--input", str(bad), "--window", "60", "--method", "ensemble"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "not-a-number" in captured.err
        assert not captured.out.strip()

    def test_all_good_files_exit_zero(self, tmp_path, capsys):
        paths = []
        for name in ("a.csv", "b.csv"):
            path = tmp_path / name
            self._write_good(path)
            paths.append(str(path))
        code = main(
            [
                "detect", "--input", *paths, "--window", "60",
                "--method", "ensemble", "--ensemble-size", "4", "--seed", "0",
            ]
        )
        assert code == 0
        assert "failed" not in capsys.readouterr().err

    def test_survivor_results_independent_of_neighbour_load_failure(self, tmp_path, capsys):
        """A file's batch result must not depend on a neighbour failing to load.

        Seeds are spawned over all inputs and passed explicitly, so slot i
        sees the same seed whether its neighbours loaded, failed in the
        worker, or failed at load time.
        """
        first = tmp_path / "first.csv"
        middle_good = tmp_path / "middle.csv"
        last = tmp_path / "last.csv"
        self._write_good(first)
        self._write_good(middle_good, length=1400)
        self._write_good(last)

        def run_batch(middle_path):
            out = tmp_path / "out.json"
            code = main(
                [
                    "detect", "--input", str(first), str(middle_path), str(last),
                    "--window", "60", "--method", "ensemble",
                    "--ensemble-size", "4", "--seed", "5", "--json", str(out),
                ]
            )
            capsys.readouterr()
            results = {}
            for index in (0, 1, 2):
                sidecar = tmp_path / f"out.{index}.json"
                if sidecar.exists():
                    results[index] = sidecar.read_text()
                    sidecar.unlink()
            return code, results

        code_ok, all_good = run_batch(middle_good)
        assert code_ok == 0 and set(all_good) == {0, 1, 2}
        corrupt = tmp_path / "corrupt.csv"
        corrupt.write_text("1.0\nbroken\n2.0\n")
        code_bad, partial = run_batch(corrupt)
        assert code_bad != 0 and set(partial) == {0, 2}
        # Survivors' detections are bitwise identical to the all-good run.
        assert partial[0] == all_good[0]
        assert partial[2] == all_good[2]

    def test_directory_input_contained(self, tmp_path, capsys):
        """A non-file input (IsADirectoryError) is contained like any other."""
        good = tmp_path / "good.csv"
        self._write_good(good)
        folder = tmp_path / "folder.csv"
        folder.mkdir()
        code = main(
            [
                "detect", "--input", str(good), str(folder), "--window", "60",
                "--method", "ensemble", "--ensemble-size", "4", "--seed", "0",
            ]
        )
        assert code != 0
        captured = capsys.readouterr()
        assert "good.csv" in captured.out
        assert "folder.csv" in captured.err
