"""Cluster executor suite: TCP dispatch parity and fault injection.

Two contracts are enforced here, both with a real localhost mini-cluster
(one in-process scheduler + worker subprocesses spawned through the CLI
``worker`` subcommand, exactly as a multi-host fleet would start):

1. **Parity** — every engine entry point (``detect``, ``detect_batch``,
   ``iter_detect_batch``, ``evaluate_methods``, streaming snapshots, the
   baselines, the serving core) produces **bitwise identical** results on
   the cluster backend and the serial reference. The full parity matrix
   also runs via ``pytest --executor cluster tests/test_executor_parity.py``
   (the CI cluster-smoke step).
2. **Fault tolerance** — killing a worker mid-batch loses no series and
   duplicates none (tasks are retried on surviving workers), worker-side
   failures still surface as :class:`BatchItemError` naming the series,
   and an empty pool fails fast with an actionable message.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.cluster import (
    ClusterError,
    ClusterExecutor,
    ClusterWorkerLost,
    parse_address,
)
from repro.core.engine import BatchItemError, detect_many
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import as_executor
from repro.core.streaming import StreamingEnsembleDetector
from repro.discord.discords import DiscordDetector
from repro.evaluation.harness import evaluate_methods_on_corpus
from repro.service import DetectService

WINDOW = 60
ENSEMBLE = 6
SEED = 11

#: Generous waits: CI runners can take seconds to spawn a python worker.
CLUSTER_KWARGS = dict(worker_wait=90.0, lease_timeout=15.0)


def _sleepy_echo(payload):
    """Worker task: sleep, then echo — slow enough to be killed mid-flight."""
    index, delay = payload
    time.sleep(delay)
    return index * 10


def _resolve_len(payload):
    """Worker task: materialize a shared series and return its length."""
    from repro.core.executors import resolve_series

    return len(resolve_series(payload))


def _detector(**overrides) -> EnsembleGrammarDetector:
    kwargs = dict(window=WINDOW, ensemble_size=ENSEMBLE, seed=SEED)
    kwargs.update(overrides)
    return EnsembleGrammarDetector(**kwargs)


@pytest.fixture(scope="module")
def cluster():
    """One shared 2-worker localhost cluster (spawn cost paid once)."""
    with ClusterExecutor(2, **CLUSTER_KWARGS) as executor:
        executor.start(wait=True)
        yield executor


@pytest.fixture
def series(rng) -> np.ndarray:
    series = np.sin(np.linspace(0, 24 * np.pi, 1400))
    series += 0.05 * rng.standard_normal(1400)
    series[500:560] = np.sin(np.linspace(0, 8 * np.pi, 60))
    return series


@pytest.fixture
def batch(rng) -> list[np.ndarray]:
    batch = []
    for i in range(3):
        series = np.sin(np.linspace(0, 24 * np.pi, 1200))
        series += 0.05 * rng.standard_normal(1200)
        position = 200 + 250 * i
        series[position : position + 60] = np.sin(np.linspace(0, 8 * np.pi, 60))
        batch.append(series)
    return batch


class TestSpecParsing:
    def test_parse_address(self):
        assert parse_address("127.0.0.1:9123") == ("127.0.0.1", 9123)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("no-port")
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address(":123")
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("host:notaport")

    def test_as_executor_cluster_spec(self):
        executor = as_executor("cluster", 2)
        assert isinstance(executor, ClusterExecutor)
        assert executor.kind == "cluster"
        executor.close()

    def test_bound_spec_spawns_no_local_workers(self):
        executor = as_executor("cluster:127.0.0.1:0", 2)
        assert executor._spawn_workers == 0
        executor.close()

    def test_close_is_idempotent_and_refuses_work(self):
        executor = ClusterExecutor(1, spawn_workers=0)
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map(len, ["x"])


class TestDispatch:
    def test_map_order_and_results(self, cluster):
        assert cluster.map(len, ["a", "bb", "ccc", ""]) == [1, 2, 3, 0]

    def test_imap_unordered_yields_every_index_once(self, cluster):
        payloads = [(i, 0.0) for i in range(8)]
        pairs = list(cluster.imap_unordered(_sleepy_echo, payloads))
        assert sorted(index for index, _ in pairs) == list(range(8))
        assert {index: value for index, value in pairs} == {
            i: i * 10 for i in range(8)
        }

    def test_worker_side_exception_propagates(self, cluster):
        with pytest.raises(TypeError):
            cluster.map(len, ["ok", 123])

    def test_return_exceptions_contains_failures(self, cluster):
        pairs = dict(
            cluster.imap_unordered(len, ["ok", 123, "xyz"], return_exceptions=True)
        )
        assert pairs[0] == 2
        assert isinstance(pairs[1], TypeError)
        assert pairs[2] == 3

    def test_blobs_released_after_handles_close(self, cluster, series):
        with cluster.share_series(series) as handle:
            assert handle.ref.length == len(series)
            assert cluster.stats()["blobs"] == 1
            # The same series shared twice is stored once (content address).
            with cluster.share_series(series) as twin:
                assert twin.ref.digest == handle.ref.digest
                assert cluster.stats()["blobs"] == 1
        assert cluster.stats()["blobs"] == 0

    def test_worker_stats_expose_fleet(self, cluster):
        stats = cluster.worker_stats()
        assert len(stats) == 2
        assert all(s["pid"] > 0 for s in stats)
        assert len(cluster.worker_pids()) == 2

    def test_blob_released_while_queued_fails_that_task_only(self):
        """Regression: a handle closed while its task is still queued must
        fail that task gracefully — not tear down the worker connection."""
        with ClusterExecutor(1, **CLUSTER_KWARGS) as executor:
            executor.start(wait=True)
            series = np.arange(64.0)
            # Occupy the only worker so the blob task stays queued...
            blocker = executor.imap_unordered(_sleepy_echo, [(0, 1.0)])
            time.sleep(0.3)
            handle = executor.share_series(series)
            follow = executor.imap_unordered(
                _resolve_len, [handle.ref], return_exceptions=True
            )
            handle.close()  # ...and release the blob before it is leased.
            assert list(blocker) == [(0, 0)]
            ((index, result),) = list(follow)
            assert index == 0
            assert isinstance(result, ClusterError)
            assert "released" in str(result)
            # The worker survived and keeps serving.
            assert executor.map(len, ["abc"]) == [3]
            assert len(executor.worker_stats()) == 1

    def test_unpicklable_fn_does_not_corrupt_blob_state(self):
        """Regression: a scheduler-side pickle failure must not mark the
        task's blobs as delivered — the next task still receives them."""
        with ClusterExecutor(1, **CLUSTER_KWARGS) as executor:
            executor.start(wait=True)
            series = np.arange(128.0)
            with executor.share_series(series) as handle:
                with pytest.raises(ClusterError, match="serialized"):
                    executor.map(lambda payload: payload, [handle.ref])
                assert executor.map(_resolve_len, [handle.ref]) == [128]

    def test_failed_submission_unwinds_queued_tasks(self, cluster, series):
        """Regression: a submit() failure partway through a batch must not
        leave earlier tasks queued in the scheduler forever."""
        handle = cluster.share_series(series)
        ref = handle.ref
        handle.close()  # ref now points at an unpublished blob
        before = cluster.stats()["tasks_submitted"]
        with pytest.raises(ClusterError, match="unpublished"):
            cluster.map(_resolve_len, [np.arange(8.0), ref])
        # The good payload was queued then unwound; the pool still works.
        assert cluster.stats()["tasks_submitted"] == before + 1
        assert cluster.map(len, ["xy"]) == [2]


class TestParity:
    """Bitwise equality with the serial reference, per engine entry point."""

    def test_detect_and_member_selection(self, cluster, series):
        reference = _detector().ensemble_report(series, keep_member_curves=True)
        report = _detector(executor=cluster).ensemble_report(
            series, keep_member_curves=True
        )
        assert report.parameters == reference.parameters
        assert report.kept == reference.kept
        assert report.stds == reference.stds
        assert np.array_equal(report.curve, reference.curve)
        for ours, expected in zip(report.member_curves, reference.member_curves):
            assert np.array_equal(ours, expected)
        assert _detector(executor=cluster).detect(series, 3) == _detector().detect(
            series, 3
        )

    def test_detect_batch(self, cluster, batch):
        reference = _detector().detect_batch(batch, 3)
        assert _detector(executor=cluster).detect_batch(batch, 3) == reference

    def test_iter_detect_batch(self, cluster, batch):
        reference = _detector().detect_batch(batch, 3)
        pairs = list(_detector(executor=cluster).iter_detect_batch(batch, 3))
        assert sorted(index for index, _ in pairs) == list(range(len(batch)))
        for index, anomalies in pairs:
            assert anomalies == reference[index]

    def test_detect_batch_chunked(self, cluster, batch):
        reference = _detector().detect_batch(batch, 3)
        assert (
            _detector(executor=cluster).detect_batch(batch, 3, chunksize=2)
            == reference
        )

    def test_streaming_snapshot(self, cluster, series):
        reference = StreamingEnsembleDetector(window=WINDOW, ensemble_size=5, seed=3)
        reference.extend(series)
        expected = reference.density_curve()
        streaming = StreamingEnsembleDetector(
            window=WINDOW, ensemble_size=5, seed=3, executor=cluster
        )
        streaming.extend(series)
        assert np.array_equal(streaming.density_curve(), expected)

    def test_evaluate_methods(self, cluster):
        from repro.datasets.planting import make_corpus
        from repro.datasets.ucr_like import dataset_by_name

        cases = make_corpus(dataset_by_name("GunPoint"), n_cases=2, seed=0)
        factories = {
            "ensemble": lambda window: _detector(window=window),
            "discord": lambda window: DiscordDetector(window),
        }
        reference = evaluate_methods_on_corpus(cases, factories, k=3)
        results = evaluate_methods_on_corpus(cases, factories, k=3, executor=cluster)
        assert set(results) == set(reference)
        for name in reference:
            assert results[name].scores == reference[name].scores

    def test_baseline_detect_many(self, cluster, batch):
        detector = DiscordDetector(WINDOW)
        reference = [detector.detect(series, 2) for series in batch]
        assert detect_many(detector, batch, 2, executor=cluster) == reference

    def test_service_detect(self, cluster, series):
        """The serving core fronts the cluster fleet with no other change."""

        async def _served():
            async with DetectService(executor=cluster, cache_entries=0) as service:
                result = await service.detect(
                    series, window=WINDOW, ensemble_size=ENSEMBLE, seed=SEED, k=3
                )
                return list(result.anomalies)

        assert asyncio.run(_served()) == _detector().detect(series, 3)


class TestBatchItemErrors:
    def test_failing_series_named(self, cluster, batch):
        bad = list(batch) + [np.arange(10.0)]  # far shorter than the window
        labels = [f"s{i}.csv" for i in range(len(bad))]
        with pytest.raises(BatchItemError) as excinfo:
            _detector(executor=cluster).detect_batch(bad, 3, labels=labels)
        assert excinfo.value.index == len(bad) - 1
        assert excinfo.value.label == f"s{len(bad) - 1}.csv"

    def test_return_exceptions_partial_batch(self, cluster, batch):
        bad = [batch[0], np.arange(10.0), batch[1]]
        reference = _detector().detect_batch(bad, 3, return_exceptions=True)
        results = _detector(executor=cluster).detect_batch(
            bad, 3, return_exceptions=True
        )
        assert results[0] == reference[0]
        assert results[2] == reference[2]
        assert isinstance(results[1], BatchItemError)
        assert results[1].index == 1


def _kill_first_busy_worker(executor: ClusterExecutor, timeout: float = 30.0) -> int | None:
    """Wait until some worker holds a lease, then SIGKILL it; returns its pid."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        busy = [w for w in executor.worker_stats() if w["leased"]]
        if busy:
            os.kill(busy[0]["pid"], signal.SIGKILL)
            return busy[0]["pid"]
        time.sleep(0.01)
    return None


class TestFaultInjection:
    """Worker loss mid-batch: retried elsewhere, nothing lost or duplicated."""

    def test_killed_worker_tasks_retried(self):
        with ClusterExecutor(2, **CLUSTER_KWARGS) as executor:
            executor.start(wait=True)
            payloads = [(i, 0.4) for i in range(6)]
            iterator = executor.imap_unordered(_sleepy_echo, payloads)
            killed = _kill_first_busy_worker(executor)
            pairs = list(iterator)
            assert killed is not None, "no worker ever held a lease"
            # Every task completed exactly once with the right value...
            assert sorted(index for index, _ in pairs) == list(range(6))
            assert dict(pairs) == {i: i * 10 for i in range(6)}
            # ...at least one of them on its second worker.
            assert executor.stats()["tasks_retried"] >= 1
            assert len(executor.worker_stats()) == 1

    def test_killed_worker_detect_batch_bitwise(self, batch):
        reference = _detector().detect_batch(batch * 2, 3)
        with ClusterExecutor(2, **CLUSTER_KWARGS) as executor:
            executor.start(wait=True)
            killer = threading.Thread(
                target=_kill_first_busy_worker, args=(executor,)
            )
            killer.start()
            results = _detector(executor=executor).detect_batch(batch * 2, 3)
            killer.join()
            assert results == reference

    def test_no_workers_fails_fast_with_hint(self):
        executor = ClusterExecutor(
            1, spawn_workers=0, min_workers=1, worker_wait=1.0
        )
        try:
            with pytest.raises(ClusterError, match="repro worker --connect"):
                executor.map(len, ["x"])
        finally:
            executor.close()

    def test_pool_lost_mid_run_fails_tasks(self):
        """Killing *every* worker strands the queue; it fails after the grace."""
        with ClusterExecutor(1, spawn_workers=1, worker_wait=1.5, lease_timeout=15.0) as executor:
            executor.start(wait=True)
            iterator = executor.imap_unordered(_sleepy_echo, [(i, 0.3) for i in range(4)])
            assert _kill_first_busy_worker(executor) is not None
            with pytest.raises(ClusterWorkerLost):
                for _ in iterator:
                    pass


class TestWorkerCli:
    def test_worker_connect_failure_is_clean_error(self, capsys):
        from repro.cli import main

        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--connect-retry", "0.2"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
