"""Cross-module property suite: invariants that span pipeline stages.

These hypothesis tests exercise whole sub-pipelines rather than single
functions — the contracts that make the paper's method correct end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.detector import GrammarAnomalyDetector
from repro.core.multiresolution import MultiResolutionDiscretizer
from repro.datasets.planting import make_corpus
from repro.datasets.ucr_like import DATASETS
from repro.grammar.density import rule_density_curve
from repro.grammar.sequitur import induce_grammar
from repro.sax.numerosity import expand_tokens, numerosity_reduction
from repro.sax.sax import discretize

steps = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


@st.composite
def series_window_params(draw):
    n = draw(st.integers(60, 240))
    window = draw(st.integers(8, 40))
    w = draw(st.integers(2, min(8, window)))
    a = draw(st.integers(2, 8))
    values = np.cumsum(draw(arrays(np.float64, n, elements=steps)))
    return values, window, w, a


class TestDiscretizationPipeline:
    @given(series_window_params())
    @settings(max_examples=30)
    def test_tokens_expand_to_window_words(self, case):
        """Numerosity reduction stays lossless after real discretization."""
        series, window, w, a = case
        words = discretize(series, window, w, a)
        tokens = numerosity_reduction(words, window)
        assert expand_tokens(tokens) == words

    @given(series_window_params())
    @settings(max_examples=30)
    def test_grammar_expansion_equals_tokens(self, case):
        """Sequitur over real SAX tokens reconstructs them exactly."""
        series, window, w, a = case
        words = discretize(series, window, w, a)
        tokens = numerosity_reduction(words, window)
        grammar = induce_grammar(tokens.words)
        assert tuple(grammar.expand(0)) == tokens.words

    @given(series_window_params())
    @settings(max_examples=20)
    def test_density_curve_nonnegative_and_sized(self, case):
        series, window, w, a = case
        words = discretize(series, window, w, a)
        tokens = numerosity_reduction(words, window)
        grammar = induce_grammar(tokens.words)
        curve = rule_density_curve(grammar, tokens, len(series))
        assert len(curve) == len(series)
        assert np.all(curve >= 0)

    @given(series_window_params())
    @settings(max_examples=15)
    def test_multiresolution_equals_plain_pipeline(self, case):
        """The Section 6.2 fast path is externally invisible."""
        series, window, w, a = case
        discretizer = MultiResolutionDiscretizer(
            series, window, max_paa_size=min(8, window), max_alphabet_size=8
        )
        fast = discretizer.tokens(w, a)
        plain = numerosity_reduction(discretize(series, window, w, a), window)
        assert fast.words == plain.words
        assert np.array_equal(fast.offsets, plain.offsets)


class TestDetectorContracts:
    @given(series_window_params())
    @settings(max_examples=15)
    def test_single_run_detector_total_function(self, case):
        """The detector returns ranked, disjoint, in-bounds candidates on
        arbitrary (random-walk) input — no crashes, no empty output."""
        series, window, w, a = case
        detector = GrammarAnomalyDetector(window, w, a)
        anomalies = detector.detect(series, k=3)
        assert 1 <= len(anomalies) <= 3
        for anomaly in anomalies:
            assert 0 <= anomaly.position <= len(series) - window
            assert anomaly.length == window
        ranks = [a.rank for a in anomalies]
        assert ranks == list(range(1, len(anomalies) + 1))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10)
    def test_offset_amplitude_invariance_of_detection(self, seed):
        """Scaling and shifting the series must not change GI detections."""
        rng = np.random.default_rng(seed)
        series = np.sin(np.linspace(0, 40 * np.pi, 2000))
        series[1000:1050] = rng.standard_normal(50)
        detector = GrammarAnomalyDetector(window=50, paa_size=5, alphabet_size=5)
        base = [(a.position, a.rank) for a in detector.detect(series, 3)]
        transformed = [(a.position, a.rank) for a in detector.detect(series * 3.7 + 11.0, 3)]
        assert base == transformed


class TestCorpusProperties:
    def test_corpus_prefix_stability(self):
        """A smaller corpus is an exact prefix of a larger one for the same
        seed — the property the sweep benches rely on to compare per-case
        scores against the main suite."""
        dataset = DATASETS["Wafer"]
        small = make_corpus(dataset, n_cases=3, seed=42)
        large = make_corpus(dataset, n_cases=6, seed=42)
        for case_small, case_large in zip(small, large):
            assert np.array_equal(case_small.series, case_large.series)
            assert case_small.gt_location == case_large.gt_location

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_every_dataset_supports_the_protocol(self, name):
        corpus = make_corpus(DATASETS[name], n_cases=2, seed=1)
        for case in corpus:
            assert len(case.series) == 21 * DATASETS[name].spec.instance_length
            assert case.gt_length == DATASETS[name].spec.instance_length
