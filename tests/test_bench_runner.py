"""Tests for the bench matrix runner: schema, fingerprint, gate math, CLI.

The runner lives under ``benchmarks/runner`` (not an installed package);
tests locate it the same way ``repro bench`` does and put it on the path.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.cli import find_benchmarks_dir, main
from repro.utils.timing import Measurement, collect, measure

BENCH_DIR = find_benchmarks_dir()
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from runner.compare import (  # noqa: E402
    baseline_from_record,
    compare_record,
    compare_records,
    comparison_report,
    load_baselines,
    write_baselines,
)
from runner.machine import FINGERPRINT_FIELDS, machine_fingerprint  # noqa: E402
from runner.matrix import load_matrix  # noqa: E402
from runner.schema import (  # noqa: E402
    SCHEMA_VERSION,
    BenchRecord,
    read_ndjson,
    record_from_measurement,
    summarize,
    write_ndjson,
)


def _record(metric="w.m", value=1.0, iqr=0.0, direction="lower", tolerance=0.5, machine=None):
    """A hand-built record with a controlled median/IQR for gate tests."""
    samples = (value - iqr / 2, value, value + iqr / 2)
    return BenchRecord(
        metric=metric,
        workload="w",
        unit="us",
        value=value,
        iqr=iqr,
        best=min(samples),
        mean=value,
        repeats=len(samples),
        warmup=1,
        direction=direction,
        tolerance=tolerance,
        samples=samples,
        params={"points": 10},
        machine=machine or dict(machine_fingerprint()),
    )


class TestMeasurementCore:
    def test_median_iqr_best_from_samples(self):
        m = Measurement(samples=(3.0, 1.0, 2.0, 10.0))
        assert m.median == 2.5
        assert m.best == 1.0
        assert m.iqr == pytest.approx(3.0)  # q3 (4.75) - q1 (1.75)
        assert m.mean == 4.0

    def test_measure_runs_warmup_plus_repeats(self):
        calls = []
        m = measure(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(calls) == 5
        assert len(m.samples) == 3

    def test_collect_rejects_metric_drift(self):
        results = iter([{"a": 1.0}, {"b": 2.0}])
        with pytest.raises(ValueError, match="metric"):
            collect(lambda: next(results), warmup=0, repeats=2)


class TestSchema:
    def test_record_round_trips_through_json(self):
        record = _record(value=2.5, iqr=0.1)
        assert BenchRecord.from_json(record.as_json()) == record

    def test_from_json_rejects_unknown_schema_version(self):
        payload = _record().as_json()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            BenchRecord.from_json(payload)

    def test_ndjson_round_trip_and_summary(self, tmp_path):
        records = [_record(metric="w.a", value=1.0), _record(metric="w.b", value=2.0)]
        path = write_ndjson(tmp_path / "run.ndjson", records)
        assert read_ndjson(path) == records

        summary = summarize(records)
        assert set(summary["metrics"]) == {"w.a", "w.b"}
        assert "samples" not in summary["metrics"]["w.a"]
        assert summary["machine"]["cpu_model"] == records[0].machine["cpu_model"]

    def test_summary_rejects_duplicate_metric_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            summarize([_record(metric="w.a"), _record(metric="w.a")])

    def test_record_from_measurement_carries_protocol(self):
        m = Measurement(samples=(1.0, 2.0, 3.0))
        record = record_from_measurement(
            metric="w.m",
            workload="w",
            unit="us",
            measurement=m,
            warmup=2,
            params={"n": 1},
            machine=dict(machine_fingerprint()),
        )
        assert record.value == m.median
        assert record.repeats == 3
        assert record.warmup == 2


class TestMachineFingerprint:
    def test_stable_within_process(self):
        assert machine_fingerprint() is machine_fingerprint()

    def test_carries_all_provenance_fields(self):
        fingerprint = machine_fingerprint()
        for field in FINGERPRINT_FIELDS:
            assert fingerprint[field], field
        assert isinstance(fingerprint["cpu_count"], int)


class TestGateMath:
    def test_flags_3x_slowdown(self):
        baseline = baseline_from_record(_record(value=1.0, iqr=0.05))
        verdict = compare_record(_record(value=3.0, iqr=0.05), baseline)
        assert verdict.regressed and not verdict.improved

    def test_passes_within_noise_jitter(self):
        baseline = baseline_from_record(_record(value=1.0, iqr=0.05))
        verdict = compare_record(_record(value=1.2, iqr=0.05), baseline)
        assert not verdict.regressed and not verdict.improved

    def test_noise_margin_forgives_wide_iqr(self):
        # 1.6x exceeds the 1.5x tolerance band, but the IQR says the runs
        # are too noisy for that to be significant.
        baseline = baseline_from_record(_record(value=1.0, iqr=0.3))
        assert not compare_record(_record(value=1.6, iqr=0.05), baseline).regressed

    def test_reports_improvement_beyond_tolerance(self):
        baseline = baseline_from_record(_record(value=3.0, iqr=0.01))
        verdict = compare_record(_record(value=1.0, iqr=0.01), baseline)
        assert verdict.improved and not verdict.regressed

    def test_higher_is_better_direction_inverts(self):
        baseline = baseline_from_record(_record(value=300.0, iqr=1.0, direction="higher"))
        slower = compare_record(_record(value=100.0, iqr=1.0, direction="higher"), baseline)
        assert slower.regressed
        faster = compare_record(_record(value=900.0, iqr=1.0, direction="higher"), baseline)
        assert faster.improved and not faster.regressed

    def test_cross_machine_slack_widens_the_gate(self):
        other = dict(machine_fingerprint())
        other["cpu_model"] = "some other cpu"
        baseline = baseline_from_record(_record(value=1.0, iqr=0.0, machine=other))
        # 1.9x: over the same-machine 1.5x gate, under the 2x-slack 2.5x gate.
        verdict = compare_record(
            _record(value=1.9, iqr=0.0), baseline, cross_machine_slack=2.0
        )
        assert not verdict.machine_match
        assert not verdict.regressed
        assert compare_record(_record(value=1.9, iqr=0.0), baseline).regressed

    def test_report_exit_codes_honor_strict(self):
        baseline = baseline_from_record(_record(value=1.0, iqr=0.0))
        comparisons, untracked = compare_records(
            [_record(value=3.0, iqr=0.0), _record(metric="w.new", value=1.0)],
            {"w.m": baseline},
        )
        assert untracked == ["w.new"]
        text, code = comparison_report(comparisons, untracked, strict=True)
        assert code == 1 and "REGRESSED" in text and "w.new" in text
        text, code = comparison_report(comparisons, untracked, strict=False)
        assert code == 0 and "REGRESSED" in text

    def test_clean_report_exits_zero(self):
        baseline = baseline_from_record(_record(value=1.0, iqr=0.0))
        comparisons, untracked = compare_records([_record(value=1.1, iqr=0.0)], {"w.m": baseline})
        _, code = comparison_report(comparisons, untracked, strict=True)
        assert code == 0


class TestBaselineFiles:
    def test_write_load_round_trip(self, tmp_path):
        record = _record(metric="w.m", value=2.0, iqr=0.1)
        write_baselines(tmp_path, [record])
        baselines = load_baselines(tmp_path)
        assert set(baselines) == {"w.m"}
        assert baselines["w.m"]["value"] == 2.0
        assert "samples" not in baselines["w.m"]

    def test_load_rejects_renamed_file(self, tmp_path):
        (path,) = write_baselines(tmp_path, [_record(metric="w.m")])
        path.rename(tmp_path / "w.other.json")
        with pytest.raises(ValueError, match="does not match"):
            load_baselines(tmp_path)


class TestBenchCli:
    CELL = "grammar_tokens.kernel=fast"

    def test_list_prints_tier1_cells(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert self.CELL in out and "sliding_poll" in out
        assert "dispatch" not in out  # tier 2 stays out of the default listing

    def test_list_all_includes_tier2(self, capsys):
        assert main(["bench", "--list", "--tier", "all"]) == 0
        assert "service_throughput" in capsys.readouterr().out

    def test_empty_selection_is_an_error(self, capsys):
        assert main(["bench", "--list", "--filter", "no-such-cell"]) == 2
        assert "no matrix cells" in capsys.readouterr().err

    def test_run_and_compare_round_trip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
        out_dir = tmp_path / "results"
        base_dir = tmp_path / "baselines"

        # First run seeds the baselines through the runner's own writer.
        from runner.cli import run_cells

        matrix = load_matrix(BENCH_DIR / "bench_matrix.toml")
        cells = matrix.cells(tier=1, pattern=self.CELL)
        assert len(cells) == 1
        records = run_cells(cells, warmup=0, repeats=2)
        write_baselines(base_dir, records)

        # Unchanged tree: the same cell gates green against itself.
        code = main(
            [
                "bench",
                "--filter", self.CELL,
                "--warmup", "0",
                "--repeats", "2",
                "--output", str(out_dir),
                "--compare", str(base_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 regression(s)" in out
        assert (out_dir / "bench_matrix.ndjson").is_file()
        assert (out_dir / "bench_matrix_summary.json").is_file()
        (loaded,) = read_ndjson(out_dir / "bench_matrix.ndjson")
        assert loaded.metric == f"{self.CELL}.us_per_token"

        # Injected 10x slowdown (by shrinking the committed baseline):
        # nonzero exit when strict, zero when REPRO_BENCH_STRICT=0.
        baseline_file = base_dir / f"{self.CELL}.us_per_token.json"
        payload = json.loads(baseline_file.read_text())
        payload["value"] /= 10.0
        payload["iqr"] = 0.0
        baseline_file.write_text(json.dumps(payload))

        args = [
            "bench",
            "--filter", self.CELL,
            "--warmup", "0",
            "--repeats", "2",
            "--output", str(out_dir),
            "--compare", str(base_dir),
        ]
        assert main(args) == 1
        assert "REGRESSED" in capsys.readouterr().out
        monkeypatch.setenv("REPRO_BENCH_STRICT", "0")
        assert main(args) == 0
