"""Unit tests for repro.core.engine (shared state + parallel execution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    BatchItemError,
    SharedStreamState,
    compute_member_curves,
    detect_batch,
    iter_detect_batch,
)
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector
from repro.sax.paa import CumulativeStats


@pytest.fixture
def batch_series(rng) -> np.ndarray:
    series = np.sin(np.linspace(0, 40 * np.pi, 2000))
    series += 0.05 * rng.standard_normal(2000)
    series[900:1000] = np.sin(np.linspace(0, 12 * np.pi, 100))
    return series


class TestSharedStreamState:
    def test_append_matches_cumsum(self, rng):
        values = rng.standard_normal(300)
        state = SharedStreamState(initial_capacity=4)  # force several growth cycles
        for value in values:
            state.append(float(value))
        assert len(state) == 300
        assert np.array_equal(state.values, values)
        assert np.array_equal(state.prefix_sum, np.concatenate(([0.0], np.cumsum(values))))
        assert np.array_equal(state.prefix_sq, np.concatenate(([0.0], np.cumsum(values**2))))

    def test_chunked_extend_bitwise_equals_batch_cumsum(self, rng):
        """The resumed running total must reproduce np.cumsum's exact
        left-associated float accumulation, no matter the chunking."""
        values = rng.standard_normal(1000) * 1e3
        state = SharedStreamState(initial_capacity=1)
        splits = [0, 1, 2, 10, 11, 500, 993, 1000]
        for start, stop in zip(splits[:-1], splits[1:]):
            state.extend(values[start:stop])
        assert np.array_equal(state.prefix_sum, np.concatenate(([0.0], np.cumsum(values))))
        assert np.array_equal(state.prefix_sq, np.concatenate(([0.0], np.cumsum(values**2))))

    def test_paa_rows_bitwise_equal_batch_matrix(self, rng):
        values = np.cumsum(rng.standard_normal(400))
        state = SharedStreamState()
        state.extend(values[:123])
        state.extend(values[123:])
        stats = CumulativeStats(values)
        for window, paa_size in [(50, 4), (10, 3), (60, 7)]:
            expected = stats.sliding_paa_matrix(window, paa_size)
            assert np.array_equal(state.paa_rows(0, window, paa_size), expected)
            # Partial reads tile the full matrix.
            assert np.array_equal(state.paa_rows(100, window, paa_size), expected[100:])

    def test_n_windows(self):
        state = SharedStreamState()
        assert state.n_windows(10) == 0
        state.extend(np.arange(9.0))
        assert state.n_windows(10) == 0
        state.append(1.0)
        assert state.n_windows(10) == 1

    def test_non_finite_rejected_whole_chunk(self):
        state = SharedStreamState()
        state.extend([1.0, 2.0])
        chunk = np.array([3.0, np.nan, 4.0])
        with pytest.raises(ValueError, match="finite"):
            state.extend(chunk)
        # A rejected chunk must leave the state untouched.
        assert len(state) == 2
        with pytest.raises(ValueError, match="finite"):
            state.append(float("inf"))
        assert len(state) == 2

    def test_non_1d_chunk_rejected(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            SharedStreamState().extend(np.ones((2, 2)))

    def test_bad_first_start_rejected(self):
        state = SharedStreamState()
        state.extend(np.arange(20.0))
        with pytest.raises(ValueError, match="first_start"):
            state.paa_rows(50, 10, 2)

    def test_paa_rows_validates_window_and_paa_size(self):
        """Same guards as the batch entry point (sliding_paa_matrix)."""
        state = SharedStreamState()
        state.extend(np.arange(100.0))
        with pytest.raises(ValueError, match="exceeds"):
            state.paa_rows(0, 10, 20)  # paa_size > window
        with pytest.raises(ValueError, match="exceeds"):
            state.paa_rows(0, 200, 4)  # window > stream length
        with pytest.raises(ValueError, match="at least 2"):
            state.paa_rows(0, 0, 4)


class TestCapacityBoundaries:
    """_grow_to / extend around the doubling boundaries (exact behaviour)."""

    @staticmethod
    def _assert_prefix_integrity(state: SharedStreamState, values: np.ndarray) -> None:
        assert len(state) == len(values)
        assert np.array_equal(state.values, values)
        assert np.array_equal(state.prefix_sum, np.concatenate(([0.0], np.cumsum(values))))
        assert np.array_equal(state.prefix_sq, np.concatenate(([0.0], np.cumsum(values**2))))

    def test_fill_to_exact_capacity_does_not_reallocate(self, rng):
        state = SharedStreamState(initial_capacity=4)
        buffer_before = state._values
        values = rng.standard_normal(4)
        state.extend(values)  # exactly full
        assert state._values is buffer_before
        assert len(state._values) == 4
        self._assert_prefix_integrity(state, values)

    def test_append_exactly_at_capacity_triggers_one_doubling(self, rng):
        state = SharedStreamState(initial_capacity=4)
        values = rng.standard_normal(5)
        for value in values[:4]:
            state.append(float(value))
        assert len(state._values) == 4
        state.append(float(values[4]))  # the boundary append
        assert len(state._values) == 8  # doubled, not grown to 5
        self._assert_prefix_integrity(state, values)

    def test_extend_spanning_one_growth(self, rng):
        state = SharedStreamState(initial_capacity=4)
        values = rng.standard_normal(7)
        state.extend(values[:3])
        assert len(state._values) == 4
        state.extend(values[3:])  # 3 + 4 = 7 > 4: one doubling to 8
        assert len(state._values) == 8
        self._assert_prefix_integrity(state, values)

    def test_extend_spanning_two_growths(self, rng):
        state = SharedStreamState(initial_capacity=4)
        values = rng.standard_normal(14)
        state.extend(values[:5])  # 5 > 4: grow to max(5, 8) = 8
        assert len(state._values) == 8
        state.extend(values[5:])  # 14 > 8: grow to max(14, 16) = 16
        assert len(state._values) == 16
        self._assert_prefix_integrity(state, values)

    def test_oversized_chunk_jumps_straight_to_required(self, rng):
        state = SharedStreamState(initial_capacity=4)
        values = rng.standard_normal(50)
        state.extend(values)  # 50 > 2 * 4: capacity jumps to required
        assert len(state._values) == 50
        self._assert_prefix_integrity(state, values)

    def test_growth_preserves_prefix_sums_bitwise(self, rng):
        """The copied prefix arrays must stay bitwise equal to one cumsum."""
        values = rng.standard_normal(100) * 1e3
        grown = SharedStreamState(initial_capacity=1)  # many growth cycles
        roomy = SharedStreamState(initial_capacity=256)  # zero growth cycles
        for start in range(0, 100, 7):
            grown.extend(values[start : start + 7])
            roomy.extend(values[start : start + 7])
        assert np.array_equal(grown.values, roomy.values)
        assert np.array_equal(grown.prefix_sum, roomy.prefix_sum)
        assert np.array_equal(grown.prefix_sq, roomy.prefix_sq)


class TestPaaRowsWindowCountEdges:
    def test_empty_matrix_when_first_start_equals_window_count(self):
        state = SharedStreamState()
        state.extend(np.arange(30.0) % 7)
        stop = state.n_windows(10)
        rows = state.paa_rows(stop, 10, 5)
        assert rows.shape == (0, 5)
        assert rows.dtype == np.float64

    def test_single_window_stream(self):
        """len(stream) == window: exactly one completed window."""
        state = SharedStreamState()
        state.extend(np.arange(10.0))
        assert state.n_windows(10) == 1
        assert state.paa_rows(0, 10, 5).shape == (1, 5)
        assert state.paa_rows(1, 10, 5).shape == (0, 5)

    def test_zero_completed_windows_raises_cleanly(self):
        """window > stream length means zero windows: a clear error, not junk."""
        state = SharedStreamState()
        state.extend(np.arange(9.0))
        assert state.n_windows(10) == 0
        with pytest.raises(ValueError, match="exceeds"):
            state.paa_rows(0, 10, 4)


class TestSharedMemoryLayout:
    def test_ensemble_members_share_one_buffer(self):
        """The engine contract: O(stream + N·w) memory — every member
        references the ensemble's single stream state and holds no
        per-member value/prefix copies."""
        detector = StreamingEnsembleDetector(window=50, ensemble_size=10, seed=0)
        detector.extend(np.sin(np.linspace(0, 20 * np.pi, 1000)))
        assert all(member.state is detector.state for member in detector.members)
        for member in detector.members:
            assert not hasattr(member, "_values")
            assert not hasattr(member, "_prefix")
            assert not hasattr(member, "_prefix_sq")
        # The state itself holds exactly one buffer of each kind.
        assert len(detector.state.values) == 1000

    def test_shared_member_cannot_be_fed_directly(self):
        detector = StreamingEnsembleDetector(window=50, ensemble_size=4, seed=0)
        member = detector.members[0]
        with pytest.raises(ValueError, match="shares its stream state"):
            member.append(1.0)
        with pytest.raises(ValueError, match="shares its stream state"):
            member.extend([1.0, 2.0])

    def test_standalone_member_owns_its_state(self):
        member = StreamingGrammarDetector(window=10)
        member.extend(np.arange(20.0) % 7)
        assert member.state.n_windows(10) == 11


class TestParallelMemberExecution:
    def test_n_jobs_curves_identical_to_serial(self, batch_series):
        parameters = [(4, 4), (4, 7), (2, 3), (6, 5), (6, 2)]
        serial = compute_member_curves(
            batch_series, 100, parameters, max_paa_size=10, max_alphabet_size=10, n_jobs=1
        )
        parallel = compute_member_curves(
            batch_series, 100, parameters, max_paa_size=10, max_alphabet_size=10, n_jobs=2
        )
        assert len(serial) == len(parallel) == len(parameters)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_ensemble_detector_n_jobs_identical(self, batch_series):
        serial = EnsembleGrammarDetector(window=100, ensemble_size=8, seed=3, n_jobs=1)
        parallel = EnsembleGrammarDetector(window=100, ensemble_size=8, seed=3, n_jobs=2)
        assert serial.detect(batch_series, 3) == parallel.detect(batch_series, 3)
        assert np.array_equal(
            serial.density_curve(batch_series), parallel.density_curve(batch_series)
        )

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            EnsembleGrammarDetector(window=100, n_jobs=0)
        with pytest.raises(ValueError, match="n_jobs"):
            compute_member_curves(
                np.arange(200.0), 50, [(4, 4)], max_paa_size=10, max_alphabet_size=10,
                n_jobs=-1,
            )


class TestDetectBatch:
    def _series_batch(self, rng, count=3, length=1200):
        batch = []
        for i in range(count):
            series = np.sin(np.linspace(0, 24 * np.pi, length))
            series += 0.05 * rng.standard_normal(length)
            position = 200 + 250 * i
            series[position : position + 60] = np.sin(np.linspace(0, 8 * np.pi, 60))
            batch.append(series)
        return batch

    def test_parallel_identical_to_serial(self, rng):
        batch = self._series_batch(rng)
        detector = EnsembleGrammarDetector(window=60, ensemble_size=6, seed=11)
        serial = detector.detect_batch(batch, 3, n_jobs=1)
        parallel = detector.detect_batch(batch, 3, n_jobs=2)
        assert serial == parallel
        assert len(serial) == len(batch)

    def test_same_seed_same_anomalies(self, rng):
        batch = self._series_batch(rng)
        first = EnsembleGrammarDetector(window=60, ensemble_size=6, seed=11)
        second = EnsembleGrammarDetector(window=60, ensemble_size=6, seed=11)
        assert first.detect_batch(batch, 3) == second.detect_batch(batch, 3)

    def test_batch_results_are_ranked_per_series(self, rng):
        batch = self._series_batch(rng, count=2)
        detector = EnsembleGrammarDetector(window=60, ensemble_size=6, seed=0)
        results = detector.detect_batch(batch, 2)
        for anomalies in results:
            assert [a.rank for a in anomalies] == list(range(1, len(anomalies) + 1))

    def test_module_function_matches_method(self, rng):
        batch = self._series_batch(rng, count=2)
        detector = EnsembleGrammarDetector(window=60, ensemble_size=6, seed=4)
        assert detect_batch(detector, batch, 2) == detector.detect_batch(batch, 2)

    def test_empty_batch(self):
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        assert detector.detect_batch([], 3) == []

    def test_generator_seed_supported(self, rng):
        batch = self._series_batch(rng, count=2)
        detector = EnsembleGrammarDetector(
            window=60, ensemble_size=4, seed=np.random.default_rng(9)
        )
        results = detector.detect_batch(batch, 2)
        assert len(results) == 2

    def test_worker_error_names_failing_series_inline(self, rng):
        """Regression: a raised exception used to lose which input failed."""
        batch = self._series_batch(rng, count=2) + [np.arange(10.0)]  # too short
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        with pytest.raises(BatchItemError) as excinfo:
            detector.detect_batch(batch, 2)
        error = excinfo.value
        assert error.index == 2
        assert error.label is None
        assert "series 2" in str(error)
        assert error.__cause__ is not None  # inline path keeps the chain

    def test_worker_error_names_failing_series_pooled(self, rng):
        batch = [np.arange(10.0)] + self._series_batch(rng, count=2)
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        with pytest.raises(BatchItemError) as excinfo:
            detector.detect_batch(
                batch, 2, n_jobs=2, labels=["bad.csv", "a.csv", "b.csv"]
            )
        error = excinfo.value
        assert error.index == 0
        assert error.label == "bad.csv"
        assert "bad.csv" in str(error)
        assert "exceeds" in error.cause_message

    def test_iter_detect_batch_error_carries_index(self, rng):
        batch = self._series_batch(rng, count=1) + [np.arange(10.0)]
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        seen = []
        with pytest.raises(BatchItemError) as excinfo:
            for index, anomalies in iter_detect_batch(detector, batch, 2):
                seen.append(index)
        assert excinfo.value.index == 1
        assert seen == [0]  # the healthy series was still delivered

    def test_mismatched_labels_rejected(self, rng):
        batch = self._series_batch(rng, count=2)
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        with pytest.raises(ValueError, match="labels"):
            detector.detect_batch(batch, 2, labels=["only-one.csv"])

    def test_clone_kwargs_round_trip(self):
        detector = EnsembleGrammarDetector(
            window=80,
            max_paa_size=8,
            max_alphabet_size=6,
            ensemble_size=12,
            selectivity=0.25,
            combiner="mean",
            numerosity="none",
            znorm_threshold=0.05,
        )
        clone = EnsembleGrammarDetector(**detector.clone_kwargs(), seed=1)
        assert clone.window == 80
        assert clone.max_paa_size == 8
        assert clone.max_alphabet_size == 6
        assert clone.ensemble_size == 12
        assert clone.selectivity == 0.25
        assert clone.combiner == "mean"
        assert clone.numerosity == "none"
        assert clone.znorm_threshold == 0.05


class TestExplicitSeedsAndPartialResults:
    """The serving-layer contracts of detect_batch: seeds= and return_exceptions=."""

    def _series(self, seed, length=900):
        rng = np.random.default_rng(seed)
        series = np.sin(np.linspace(0, 18 * np.pi, length))
        series += 0.05 * rng.standard_normal(length)
        return series

    def test_explicit_seeds_equal_direct_detect(self, executor_kind):
        """seeds=[s...] makes batch slot i equal a direct detect() with seed s."""
        batch = [self._series(i) for i in range(3)]
        detector = EnsembleGrammarDetector(window=60, ensemble_size=5, seed=999)
        results = detector.detect_batch(
            batch, 3, seeds=[7, 8, 9], executor=executor_kind, n_jobs=2
        )
        for seed, series, anomalies in zip([7, 8, 9], batch, results):
            direct = EnsembleGrammarDetector(window=60, ensemble_size=5, seed=seed)
            assert anomalies == direct.detect(series, 3)

    def test_explicit_seeds_independent_of_batch_composition(self):
        """Coalescing extra series around a request never changes its result."""
        target = self._series(0)
        detector = EnsembleGrammarDetector(window=60, ensemble_size=5, seed=0)
        alone = detector.detect_batch([target], 3, seeds=[42])
        packed = detector.detect_batch(
            [self._series(1), target, self._series(2)], 3, seeds=[1, 42, 3]
        )
        assert packed[1] == alone[0]

    def test_seed_count_mismatch_rejected(self):
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        with pytest.raises(ValueError, match="2 seeds for 1 series"):
            detector.detect_batch([self._series(0)], 3, seeds=[1, 2])

    def test_return_exceptions_contains_failure(self, executor_kind):
        """One bad series fills its slot with the error; the others complete."""
        batch = [self._series(0), np.arange(10.0), self._series(2)]
        detector = EnsembleGrammarDetector(window=60, ensemble_size=5, seed=3)
        results = detector.detect_batch(
            batch,
            3,
            executor=executor_kind,
            n_jobs=2,
            labels=["a", "b", "c"],
            return_exceptions=True,
        )
        assert isinstance(results[1], BatchItemError)
        assert results[1].index == 1
        assert results[1].label == "b"
        # Healthy slots match the spawned-seed derivation of the full batch.
        from repro.utils.rng import spawn_rngs

        seeds = spawn_rngs(3, 3)
        expected = detector.detect_batch(
            [batch[0], batch[2]], 3, seeds=[seeds[0], seeds[2]]
        )
        assert results[0] == expected[0]
        assert results[2] == expected[1]

    def test_iter_detect_batch_return_exceptions(self, executor_kind):
        batch = [self._series(0), np.arange(10.0)]
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        outcomes = dict(
            iter_detect_batch(
                detector, batch, 2, executor=executor_kind, n_jobs=2, return_exceptions=True
            )
        )
        assert isinstance(outcomes[1], BatchItemError)
        assert not isinstance(outcomes[0], BaseException)

    def test_without_flag_still_raises(self):
        batch = [self._series(0), np.arange(10.0)]
        detector = EnsembleGrammarDetector(window=60, ensemble_size=4, seed=0)
        with pytest.raises(BatchItemError):
            detector.detect_batch(batch, 2)


class TestStreamStateVersion:
    """The version counter behind snapshot memoization and poll caching."""

    def test_bumps_on_ingest(self):
        state = SharedStreamState()
        v0 = state.version
        state.append(1.0)
        assert state.version == v0 + 1
        state.extend([2.0, 3.0, 4.0])
        assert state.version == v0 + 2
        state.extend([])  # empty chunk: no observable change
        assert state.version == v0 + 2

    def test_bumps_on_horizon_advance_only(self):
        state = SharedStreamState(capacity=8)
        state.extend(np.arange(8.0))
        before = state.version
        state.trim()  # horizon still 0: nothing retired
        assert state.version == before
        state.extend(np.arange(4.0))
        after_extend = state.version
        state.trim()
        assert state.start == 4
        assert state.version == after_extend + 1

    def test_rejected_chunk_does_not_bump(self):
        state = SharedStreamState()
        state.extend([1.0, 2.0])
        before = state.version
        with pytest.raises(ValueError, match="finite"):
            state.extend([3.0, np.nan])
        assert state.version == before

    def test_nbytes_counts_the_three_buffers(self):
        state = SharedStreamState(initial_capacity=16)
        assert state.nbytes == 16 * 8 + 2 * (17 * 8)
