"""Unit tests for repro.evaluation.metrics and repro.evaluation.comparison."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.anomaly import Anomaly
from repro.evaluation.comparison import WinsTiesLosses, wins_ties_losses
from repro.evaluation.metrics import average_score, best_score, hit_rate, score


class TestScoreEquation5:
    def test_exact_match(self):
        assert score(100, 100, 50) == 1.0

    def test_linear_decay(self):
        assert score(110, 100, 50) == pytest.approx(0.8)
        assert score(90, 100, 50) == pytest.approx(0.8)

    def test_zero_beyond_gt_length(self):
        assert score(150, 100, 50) == 0.0
        assert score(200, 100, 50) == 0.0

    def test_symmetric_in_offset(self):
        assert score(120, 100, 40) == score(80, 100, 40)

    def test_invalid_gt_length(self):
        with pytest.raises(ValueError, match="positive"):
            score(0, 0, 0)

    @given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(1, 2_000))
    def test_bounds(self, predicted, actual, length):
        value = score(predicted, actual, length)
        assert 0.0 <= value <= 1.0


class TestBestScore:
    def _anomaly(self, position, rank):
        return Anomaly(position=position, length=50, score=1.0, rank=rank)

    def test_picks_maximum_of_candidates(self):
        candidates = [self._anomaly(300, 1), self._anomaly(105, 2), self._anomaly(500, 3)]
        assert best_score(candidates, 100, 50) == pytest.approx(0.9)

    def test_empty_candidates_zero(self):
        assert best_score([], 100, 50) == 0.0

    def test_paper_protocol_top3_max(self):
        """Only the best of the top-3 counts (Section 7.1.2)."""
        candidates = [self._anomaly(100, 1), self._anomaly(101, 2)]
        assert best_score(candidates, 100, 50) == 1.0


class TestHitRate:
    def test_fraction_positive(self):
        assert hit_rate([0.0, 0.5, 1.0, 0.0]) == 0.5

    def test_all_hits(self):
        assert hit_rate([0.1, 0.9]) == 1.0

    def test_no_hits(self):
        assert hit_rate([0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            hit_rate([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hit_rate([1.5])


class TestAverageScore:
    def test_mean(self):
        assert average_score([0.0, 0.5, 1.0]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            average_score([])


class TestWinsTiesLosses:
    def test_paper_cell_format(self):
        assert str(WinsTiesLosses(12, 5, 8)) == "12/5/8"

    def test_total(self):
        assert WinsTiesLosses(12, 5, 8).total == 25

    def test_counting(self):
        a = [1.0, 0.5, 0.0, 0.7]
        b = [0.5, 0.5, 0.5, 0.9]
        result = wins_ties_losses(a, b)
        assert (result.wins, result.ties, result.losses) == (1, 1, 2)

    def test_tolerance_for_ties(self):
        result = wins_ties_losses([0.5], [0.5 + 1e-9])
        assert result.ties == 1

    def test_custom_tolerance(self):
        result = wins_ties_losses([0.5], [0.52], tolerance=0.05)
        assert result.ties == 1

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            wins_ties_losses([0.5, 0.5], [0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            wins_ties_losses([], [])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WinsTiesLosses(-1, 0, 0)

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30),
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30),
    )
    def test_counts_partition_cases(self, a, b):
        n = min(len(a), len(b))
        result = wins_ties_losses(a[:n], b[:n])
        assert result.total == n

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30))
    def test_self_comparison_all_ties(self, scores):
        result = wins_ties_losses(scores, scores)
        assert result.ties == len(scores)
        assert result.wins == 0

    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=20),
        st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=20),
    )
    def test_antisymmetric(self, a, b):
        n = min(len(a), len(b))
        forward = wins_ties_losses(a[:n], b[:n])
        backward = wins_ties_losses(b[:n], a[:n])
        assert forward.wins == backward.losses
        assert forward.losses == backward.wins
