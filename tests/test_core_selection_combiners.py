"""Unit tests for repro.core.selection and repro.core.combiners."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.combiners import COMBINERS, combine_curves
from repro.core.selection import curve_std, normalize_curve, select_by_std

non_negative = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestSelectByStd:
    def test_keeps_highest_std_curves(self):
        flat = np.ones(10)
        spiky = np.zeros(10)
        spiky[5] = 10.0
        medium = np.arange(10.0)
        kept = select_by_std([flat, spiky, medium], selectivity=0.5)
        assert kept[0] == 1  # spiky has the highest std
        assert len(kept) == 2
        assert 0 not in kept  # the flat curve is dropped

    def test_keeps_at_least_one(self):
        kept = select_by_std([np.ones(5), np.ones(5)], selectivity=0.01)
        assert len(kept) == 1

    def test_selectivity_one_keeps_all(self):
        curves = [np.arange(5.0), np.ones(5), np.zeros(5)]
        kept = select_by_std(curves, selectivity=1.0)
        assert sorted(kept) == [0, 1, 2]

    def test_paper_default_forty_percent(self):
        """tau = 40% of N = 50 members keeps 20 (Algorithm 1 defaults)."""
        curves = [np.full(4, float(i)) + (np.arange(4.0) * i) for i in range(50)]
        kept = select_by_std(curves, selectivity=0.4)
        assert len(kept) == 20

    def test_ties_broken_by_index(self):
        same = np.arange(6.0)
        kept = select_by_std([same.copy(), same.copy(), same.copy()], selectivity=0.5)
        assert kept == [0, 1]

    def test_rounding_of_keep_count(self):
        curves = [np.arange(4.0) * (i + 1) for i in range(3)]
        # 0.5 * 3 = 1.5 -> ceil keeps 2 ("top tau fraction" keeps every
        # member inside the fraction).
        assert len(select_by_std(curves, selectivity=0.5)) == 2

    def test_keep_count_monotonic_in_selectivity(self):
        """Regression: int(round(...)) banker's rounding made the kept count
        non-monotonic (5 curves: tau=0.5 kept 2, tau=0.5001 kept 3)."""
        curves = [np.arange(6.0) * (i + 1) for i in range(5)]
        counts = [
            len(select_by_std(curves, tau))
            for tau in np.linspace(0.01, 1.0, 200)
        ]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 5
        # The ISSUE's concrete pair: both now keep ceil(2.5...) = 3.
        assert len(select_by_std(curves, 0.5)) == 3
        assert len(select_by_std(curves, 0.5001)) == 3

    def test_float_noise_does_not_inflate_keep_count(self):
        """0.4 * 50 is 20.000000000000004 in binary floats; the paper's
        default tau=0.4, N=50 must keep exactly 20 members."""
        curves = [np.full(4, float(i)) + (np.arange(4.0) * i) for i in range(50)]
        assert len(select_by_std(curves, selectivity=0.4)) == 20

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError, match="selectivity"):
            select_by_std([np.ones(3)], selectivity=0.0)
        with pytest.raises(ValueError, match="selectivity"):
            select_by_std([np.ones(3)], selectivity=1.5)

    def test_empty_curves_rejected(self):
        with pytest.raises(ValueError, match="no curves"):
            select_by_std([], selectivity=0.5)

    @given(
        st.lists(arrays(np.float64, 16, elements=non_negative), min_size=1, max_size=12),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_kept_stds_dominate_dropped(self, curves, selectivity):
        kept = select_by_std(curves, selectivity)
        dropped = [i for i in range(len(curves)) if i not in kept]
        if dropped:
            min_kept = min(curve_std(curves[i]) for i in kept)
            max_dropped = max(curve_std(curves[i]) for i in dropped)
            assert min_kept >= max_dropped - 1e-12


class TestNormalizeCurve:
    def test_scales_to_unit_max(self):
        out = normalize_curve(np.array([0.0, 2.0, 4.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_zeros_stay_exactly_zero(self):
        """Section 6.1.2: zero density must remain significant."""
        out = normalize_curve(np.array([0.0, 5.0, 0.0, 10.0]))
        assert out[0] == 0.0
        assert out[2] == 0.0

    def test_not_minmax(self):
        """A curve with minimum 2 keeps a positive floor (no min subtraction)."""
        out = normalize_curve(np.array([2.0, 4.0]))
        assert out.tolist() == [0.5, 1.0]

    def test_all_zero_curve(self):
        out = normalize_curve(np.zeros(5))
        assert np.allclose(out, 0.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_curve(np.array([-1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            normalize_curve(np.array([]))

    @given(arrays(np.float64, st.integers(1, 64), elements=non_negative))
    def test_range_property(self, curve):
        out = normalize_curve(curve)
        assert out.min() >= 0.0
        assert out.max() <= 1.0 + 1e-12
        # Exact zeros stay exactly zero (the Section 6.1.2 guarantee). The
        # converse can fail only for denormal inputs underflowing to zero.
        assert np.all(out[curve == 0.0] == 0.0)


class TestCombineCurves:
    def test_median_of_three(self):
        curves = [np.array([0.0, 1.0]), np.array([1.0, 3.0]), np.array([2.0, 2.0])]
        assert combine_curves(curves, "median").tolist() == [1.0, 2.0]

    def test_mean(self):
        curves = [np.array([0.0, 2.0]), np.array([2.0, 4.0])]
        assert combine_curves(curves, "mean").tolist() == [1.0, 3.0]

    def test_min_max(self):
        curves = [np.array([0.0, 5.0]), np.array([3.0, 1.0])]
        assert combine_curves(curves, "min").tolist() == [0.0, 1.0]
        assert combine_curves(curves, "max").tolist() == [3.0, 5.0]

    def test_single_curve_identity(self):
        curve = np.array([1.0, 2.0, 3.0])
        for method in COMBINERS:
            assert np.allclose(combine_curves([curve], method), curve)

    def test_median_robust_to_outlier_member(self):
        """The design rationale of Section 6.1.3."""
        good = [np.array([1.0, 0.0, 1.0]) for _ in range(4)]
        outlier = np.array([0.0, 1.0, 0.0])
        combined = combine_curves(good + [outlier], "median")
        assert combined.tolist() == [1.0, 0.0, 1.0]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown combiner"):
            combine_curves([np.ones(3)], "average")

    def test_unequal_lengths_rejected_with_member_named(self):
        """Regression: ragged member curves used to fall into numpy
        object-array behavior and fail with an opaque error; now the
        offending member is named up front."""
        curves = [np.ones(5), np.ones(5), np.ones(7)]
        with pytest.raises(ValueError, match="member curve 2 has length 7"):
            combine_curves(curves)

    def test_non_1d_member_rejected(self):
        with pytest.raises(ValueError, match="member curve 1 must be 1-D"):
            combine_curves([np.ones(4), np.ones((2, 2))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            combine_curves(np.empty((0, 5)))

    @given(
        st.lists(arrays(np.float64, 8, elements=non_negative), min_size=1, max_size=9)
    )
    def test_median_bounded_by_min_max(self, curves):
        combined = combine_curves(curves, "median")
        stack = np.stack(curves)
        assert np.all(combined >= stack.min(axis=0) - 1e-12)
        assert np.all(combined <= stack.max(axis=0) + 1e-12)
