"""SAX property battery: the shared discretization plan versus the scalar path.

The contract pinned here is *bitwise* equality: for every kernel the
:class:`~repro.sax.plan.DiscretizationPlan` sweep must reproduce, bit for
bit, what the per-member scalar pipeline (``fast_paa`` per window start,
``symbol_indices`` per coefficient, ``sax_word`` per subsequence) produces —
including the awkward corners: zero-variance windows, fully constant series,
``window == len(series)``, fractional PAA segment boundaries, and streaming
ring buffers whose arrays start at a nonzero global ``origin``.

The ``python`` kernel is the oracle (it *is* the reference implementation);
``fast`` must match it exactly, and ``compiled`` is exercised whenever numba
is importable (skipped otherwise, and run in CI's numba matrix cell under
``REPRO_KERNEL=compiled``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SharedStreamState
from repro.sax import _kernel
from repro.sax.alphabet import (
    MAX_PACKED_WIDTH,
    WordInterner,
    index_matrix_to_words,
    pack_symbol_rows,
)
from repro.sax.breakpoints import gaussian_breakpoints, symbol_indices
from repro.sax.numerosity import kept_window_mask, numerosity_reduction
from repro.sax.paa import CumulativeStats, sliding_paa_rows
from repro.sax.plan import DiscretizationPlan
from repro.sax.sax import discretize, sax_word

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

KERNELS = ["python", "fast"] + (["compiled"] if HAVE_NUMBA else [])

kernel_param = pytest.mark.parametrize(
    "kernel",
    ["python", "fast", pytest.param(
        "compiled",
        marks=pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed"),
    )],
)


def make_series(seed: int, n: int, flavor: str = "mixed") -> np.ndarray:
    rng = np.random.default_rng(seed)
    if flavor == "constant":
        return np.full(n, float(rng.normal()))
    series = np.sin(np.linspace(0.0, 8.0 * np.pi, n)) + 0.3 * rng.standard_normal(n)
    if flavor == "mixed":
        # Plant exactly-constant stretches so some windows are zero-variance.
        flat = n // 4
        series[flat : flat + max(3, n // 8)] = series[flat]
    return series


def scalar_symbol_matrix(
    series: np.ndarray, window: int, paa_size: int, alphabet_size: int, threshold: float
) -> np.ndarray:
    """The per-window scalar oracle: fast_paa + symbol_indices, one row each."""
    stats = CumulativeStats(series)
    rows = [
        symbol_indices(stats.fast_paa(start, window, paa_size, threshold), alphabet_size)
        for start in range(len(series) - window + 1)
    ]
    return np.asarray(rows, dtype=np.int64)


# ----------------------------------------------------------------------
# Plan sweep vs the scalar per-window path, across kernels.
# ----------------------------------------------------------------------


@kernel_param
@pytest.mark.parametrize("seed", range(4))
def test_sweep_matches_scalar_path_random_configs(kernel, seed):
    rng = np.random.default_rng(1000 + seed)
    with _kernel.use_kernel(kernel):
        for _ in range(6):
            n = int(rng.integers(30, 160))
            window = int(rng.integers(4, min(40, n) + 1))
            series = make_series(int(rng.integers(1 << 30)), n)
            configs = [
                (int(rng.integers(2, window // 2 + 2)), int(rng.integers(2, 11)))
                for _ in range(int(rng.integers(1, 5)))
            ]
            configs = [(min(w, window), a) for w, a in configs]
            threshold = float(rng.choice([1e-8, 1e-4, 0.05]))
            plan = DiscretizationPlan(window, configs, znorm_threshold=threshold)
            sweep = plan.sweep_series(CumulativeStats(series))
            for w, a in configs:
                expected = scalar_symbol_matrix(series, window, w, a, threshold)
                assert np.array_equal(sweep.symbol_rows(w, a), expected)


@kernel_param
def test_sweep_paa_rows_match_reference_rows(kernel):
    series = make_series(7, 120)
    stats = CumulativeStats(series)
    window, threshold = 24, 1e-8
    plan = DiscretizationPlan(window, [(5, 4), (7, 6), (24, 3)], znorm_threshold=threshold)
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(stats)
        for w in (5, 7, 24):
            reference = sliding_paa_rows(
                stats.prefix_sum, stats.prefix_sq, series,
                0, len(series) - window + 1, window, w, threshold,
            )
            assert np.array_equal(sweep.paa_rows(w), reference)


@kernel_param
def test_constant_series_matches_reference_bitwise(kernel):
    # A constant series is the nastiest z-norm corner: prefix-sum
    # cancellation can leave stds a hair above the relative constancy
    # cutoff, so some rows are "zero / tiny" rather than exactly zero.
    # The contract is not "all zeros" — it is bitwise agreement with the
    # reference row computation, tiny residuals included.
    series = make_series(3, 64, flavor="constant")
    stats = CumulativeStats(series)
    plan = DiscretizationPlan(20, [(4, 5), (3, 2)])
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(stats)
        for w, a in ((4, 5), (3, 2)):
            reference = sliding_paa_rows(
                stats.prefix_sum, stats.prefix_sq, series, 0, 45, 20, w, 1e-8
            )
            assert np.array_equal(sweep.paa_rows(w), reference)
            expected = scalar_symbol_matrix(series, 20, w, a, 1e-8)
            assert np.array_equal(sweep.symbol_rows(w, a), expected)
    # An exactly-zero-valued constant series does hit the constant branch.
    zeros = np.zeros(64)
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(CumulativeStats(zeros))
        assert np.all(sweep.paa_rows(4) == 0.0)


@kernel_param
def test_zero_variance_windows_inside_noisy_series(kernel):
    series = make_series(11, 90, flavor="mixed")
    window = 8  # small enough to fit inside the planted flat stretch
    plan = DiscretizationPlan(window, [(4, 4), (5, 7)])
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(CumulativeStats(series))
        for w, a in ((4, 4), (5, 7)):
            expected = scalar_symbol_matrix(series, window, w, a, 1e-8)
            assert np.array_equal(sweep.symbol_rows(w, a), expected)
    # Sanity: the flat stretch actually produced zero-variance windows.
    stats = CumulativeStats(series)
    stds = stats.sliding_means_stds(window)[1]
    assert np.any(stds == 0.0)


@kernel_param
def test_window_equals_series_length(kernel):
    series = make_series(5, 37)
    window = len(series)
    plan = DiscretizationPlan(window, [(6, 5)])
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(CumulativeStats(series))
        assert len(sweep) == 1
        assert np.array_equal(
            sweep.symbol_rows(6, 5), scalar_symbol_matrix(series, window, 6, 5, 1e-8)
        )


@kernel_param
def test_fractional_paa_boundaries(kernel):
    # window % paa_size != 0 exercises the fractional-prefix path in every
    # kernel (and for `fast`, the non-integer-stride branch).
    series = make_series(13, 101)
    window = 23
    configs = [(4, 3), (5, 6), (7, 9), (22, 4)]
    plan = DiscretizationPlan(window, configs)
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(CumulativeStats(series))
        for w, a in configs:
            assert window % w != 0 or w == window
            expected = scalar_symbol_matrix(series, window, w, a, 1e-8)
            assert np.array_equal(sweep.symbol_rows(w, a), expected)


@kernel_param
def test_sweep_words_match_sax_word_oracle(kernel):
    series = make_series(17, 80)
    window, w, a = 16, 5, 6
    plan = DiscretizationPlan(window, [(w, a)])
    with _kernel.use_kernel(kernel):
        sweep = plan.sweep_series(CumulativeStats(series))
        words = index_matrix_to_words(sweep.symbol_rows(w, a))
    expected = [
        sax_word(series[p : p + window], w, a) for p in range(len(series) - window + 1)
    ]
    assert words == expected
    assert words == discretize(series, window, w, a)


# ----------------------------------------------------------------------
# Ring-buffer origin offsets (streaming eviction).
# ----------------------------------------------------------------------


@kernel_param
def test_sweep_with_ring_buffer_origin_matches_unbounded(kernel):
    series = make_series(29, 400)
    window = 30
    configs = [(6, 5), (10, 8)]
    plan = DiscretizationPlan(window, configs, max_alphabet_size=8)
    bounded = SharedStreamState(capacity=120)
    for offset in range(0, len(series), 70):
        bounded.extend(series[offset : offset + 70])
        bounded.trim()
    assert bounded.start > 0  # eviction actually moved the horizon
    first = max(bounded.start, bounded.n_windows(window) - 50)
    stop = bounded.n_windows(window)
    stats = CumulativeStats(series)
    with _kernel.use_kernel(kernel):
        sweep = bounded.sweep(plan, first, stop=stop)
        unbounded = plan.sweep(
            stats.prefix_sum, stats.prefix_sq, stats.series, first, stop
        )
        for w, a in configs:
            assert np.array_equal(sweep.paa_rows(w), unbounded.paa_rows(w))
            assert np.array_equal(
                sweep.symbol_rows(w, a), unbounded.symbol_rows(w, a)
            )
            expected = scalar_symbol_matrix(series, window, w, a, 1e-8)[first:stop]
            assert np.array_equal(sweep.symbol_rows(w, a), expected)


# ----------------------------------------------------------------------
# Kernel cross-checks: fast (and compiled) against the python oracle.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("other", [k for k in KERNELS if k != "python"])
def test_kernels_bitwise_equal_to_python_oracle(other):
    rng = np.random.default_rng(31)
    for trial in range(8):
        n = int(rng.integers(40, 200))
        window = int(rng.integers(4, min(48, n) + 1))
        series = make_series(int(rng.integers(1 << 30)), n,
                             flavor="mixed" if trial % 3 else "constant")
        configs = [
            (int(rng.integers(2, window + 1)), int(rng.integers(2, 11)))
            for _ in range(3)
        ]
        plan = DiscretizationPlan(window, configs)
        stats = CumulativeStats(series)
        with _kernel.use_kernel("python"):
            oracle = plan.sweep_series(stats)
            oracle_rows = {w: oracle.paa_rows(w).copy() for w, _ in configs}
            oracle_symbols = {(w, a): oracle.symbol_rows(w, a).copy() for w, a in configs}
        with _kernel.use_kernel(other):
            sweep = plan.sweep_series(stats)
            for w, a in configs:
                assert np.array_equal(sweep.paa_rows(w), oracle_rows[w])
                assert np.array_equal(sweep.symbol_rows(w, a), oracle_symbols[(w, a)])


# ----------------------------------------------------------------------
# Numerosity reduction and packed interning on sweep output.
# ----------------------------------------------------------------------


@kernel_param
def test_packed_runs_equal_row_mask_and_word_reduction(kernel):
    series = make_series(37, 150, flavor="mixed")
    window, w, a = 12, 4, 4
    plan = DiscretizationPlan(window, [(w, a)])
    with _kernel.use_kernel(kernel):
        symbols = plan.sweep_series(CumulativeStats(series)).symbol_rows(w, a)
    codes = pack_symbol_rows(symbols)
    assert codes is not None
    keep = np.ones(len(codes), dtype=bool)
    keep[1:] = codes[1:] != codes[:-1]
    assert np.array_equal(keep, kept_window_mask(symbols))
    # The packed-id path and the word-string path intern identically.
    kept = np.flatnonzero(keep)
    packed_ids = WordInterner().intern_packed(codes[kept], symbols.shape[1])
    matrix_ids = WordInterner().intern_matrix(symbols[kept])
    assert np.array_equal(packed_ids, matrix_ids)
    # And both agree with the classic string-level numerosity reduction.
    reduced = numerosity_reduction(index_matrix_to_words(symbols), window, "exact")
    assert np.array_equal(np.asarray(reduced.offsets), kept)


def test_pack_symbol_rows_width_gate():
    wide = np.zeros((3, MAX_PACKED_WIDTH + 1), dtype=np.int64)
    assert pack_symbol_rows(wide) is None
    narrow = np.zeros((3, MAX_PACKED_WIDTH), dtype=np.int64)
    assert pack_symbol_rows(narrow) is not None


@kernel_param
def test_znorm_threshold_sweep(kernel):
    # Thresholds from strict to sloppy flip different windows into the
    # constant branch; each must match the scalar oracle bitwise.
    series = make_series(41, 100, flavor="mixed")
    window, w, a = 10, 5, 6
    for threshold in (0.0, 1e-8, 1e-3, 0.5):
        plan = DiscretizationPlan(window, [(w, a)], znorm_threshold=threshold)
        with _kernel.use_kernel(kernel):
            sweep = plan.sweep_series(CumulativeStats(series))
            got = sweep.symbol_rows(w, a)
        assert np.array_equal(
            got, scalar_symbol_matrix(series, window, w, a, threshold)
        )


# ----------------------------------------------------------------------
# Breakpoint tie-breaking: searchsorted side semantics at exact breakpoints.
# ----------------------------------------------------------------------


@kernel_param
@pytest.mark.parametrize("alphabet_size", [2, 3, 4, 5, 8, 10, 16, 20])
def test_exact_breakpoint_values_golden_vectors(kernel, alphabet_size):
    """A coefficient exactly *on* a breakpoint belongs to the interval above.

    SAX uses half-open intervals [beta_{i-1}, beta_i); `side="right"` makes
    searchsorted return i for value == beta_{i-1}. Every kernel's interval
    search (vectorized searchsorted, compiled bisect) must agree with the
    scalar `symbol_indices` on values placed exactly on the table, a hair
    below, and a hair above.
    """
    table = gaussian_breakpoints(alphabet_size)
    probes = np.concatenate([
        table,                       # exactly on every breakpoint
        np.nextafter(table, -np.inf),  # one ulp below
        np.nextafter(table, np.inf),   # one ulp above
        [-np.inf if alphabet_size == 2 else -10.0, 0.0, -0.0, 10.0],
    ])
    expected = symbol_indices(probes, alphabet_size)
    # Exact-on-breakpoint golden assertions, independent of symbol_indices.
    assert np.array_equal(
        expected[: len(table)], np.arange(1, alphabet_size, dtype=np.int64)
    )
    with _kernel.use_kernel(kernel):
        got = _kernel.interval_rows_from(probes[None, :], table)[0]
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("alphabet_size", [2, 3, 5, 8, 10])
def test_merged_table_ties_agree_with_scalar(alphabet_size):
    """The merged multi-resolution route resolves ties like the scalar one.

    ``interval_indices`` + ``symbols_for`` over the merged table must place a
    value sitting exactly on a sub-alphabet breakpoint in the same symbol as
    the direct ``symbol_indices`` search against that alphabet's own table —
    the property that makes the single-member plan bitwise equal to the
    historical per-member searchsorted.
    """
    from repro.sax.breakpoints import MultiResolutionAlphabet

    table = MultiResolutionAlphabet(10)
    probes = np.concatenate([
        gaussian_breakpoints(alphabet_size),
        np.nextafter(gaussian_breakpoints(alphabet_size), -np.inf),
        np.nextafter(gaussian_breakpoints(alphabet_size), np.inf),
        table.merged_breakpoints,
    ])
    merged_route = table.symbols_for(table.interval_indices(probes), alphabet_size)
    assert np.array_equal(merged_route, symbol_indices(probes, alphabet_size))


@kernel_param
def test_signed_zero_breakpoint_tie(kernel):
    # Even alphabets have 0.0 in the table; -0.0 == 0.0 must land in the
    # same (upper) interval regardless of the sign bit.
    table = gaussian_breakpoints(4)
    assert 0.0 in table
    probes = np.array([[0.0, -0.0]])
    with _kernel.use_kernel(kernel):
        got = _kernel.interval_rows_from(probes, table)
    assert got[0, 0] == got[0, 1] == 2
