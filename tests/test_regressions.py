"""Pinned-value regression tests.

Each test freezes a concrete observable of the implementation (exact SAX
words, grammar shapes, detection positions on fixed seeds) so that future
refactors which silently change semantics fail loudly. Values were produced
by the implementation itself and sanity-checked against the paper's worked
examples where available.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.planting import make_test_case
from repro.datasets.ucr_like import DATASETS
from repro.grammar.sequitur import induce_grammar
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.sax import discretize, sax_word


class TestSaxPinned:
    def test_breakpoints_a3_and_a4(self):
        assert np.round(gaussian_breakpoints(3), 4).tolist() == [-0.4307, 0.4307]
        assert np.round(gaussian_breakpoints(4), 4).tolist() == [-0.6745, 0.0, 0.6745]

    def test_rising_ramp_words(self):
        ramp = np.arange(16.0)
        assert sax_word(ramp, 4, 4) == "abcd"
        assert sax_word(ramp, 4, 2) == "aabb"
        assert sax_word(ramp[::-1], 4, 4) == "dcba"

    def test_vee_shape_word(self):
        vee = np.concatenate([np.arange(8.0, 0.0, -1.0), np.arange(0.0, 8.0)])
        assert sax_word(vee, 4, 3) == "caac"

    def test_sine_window_words(self):
        series = np.sin(np.linspace(0, 4 * np.pi, 200))
        words = discretize(series, 50, 4, 3)
        # First window covers a full hump: rise, peak, peak, fall.
        assert words[0] == "acca"
        assert len(words) == 151

    def test_word_count_independent_of_alphabet(self):
        series = np.sin(np.linspace(0, 4 * np.pi, 120))
        for a in (2, 5, 9):
            assert len(discretize(series, 30, 5, a)) == 91


class TestSequiturPinned:
    def test_paper_table2_grammar_shape(self):
        grammar = induce_grammar(["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"])
        assert str(grammar.rules[0]) == "R0 -> R1 cc ca R1"
        assert str(grammar.rules[1]) == "R1 -> ab bc aa"

    def test_peas_porridge_structure(self):
        """The classic Sequitur demonstration string compresses with shared
        sub-rules (pease/porridge/hot/cold structure)."""
        text = (
            "pease porridge hot, pease porridge cold, "
            "pease porridge in the pot, nine days old."
        )
        tokens = list(text)
        grammar = induce_grammar(tokens)
        assert grammar.expand(0) == tokens
        assert grammar.n_rules >= 4  # rich shared structure
        total = sum(len(rule.rhs) for rule in grammar.rules)
        assert total < len(tokens)

    def test_powers_of_two_hierarchy(self):
        grammar = induce_grammar(["x"] * 16)
        # 16 = 2^4: R0 -> R1 R1, R1 -> R2 R2, R2 -> R3 R3, R3 -> x x.
        assert grammar.n_rules == 4
        assert all(len(rule.rhs) == 2 for rule in grammar.rules)


class TestDetectionPinned:
    def test_gi_fix_on_trace_case_seed0(self):
        """Detection position on a fixed corpus case is frozen."""
        case = make_test_case(DATASETS["Trace"], seed=0)
        detector = GrammarAnomalyDetector(case.gt_length, 4, 4)
        anomalies = detector.detect(case.series, k=3)
        positions = [a.position for a in anomalies]
        # The planted anomaly must be among the top-3 for this fixed seed.
        assert any(
            abs(p - case.gt_location) <= case.gt_length for p in positions
        ), (positions, case.gt_location)

    def test_ensemble_reproducible_across_instances(self):
        case = make_test_case(DATASETS["Wafer"], seed=5)
        first = EnsembleGrammarDetector(case.gt_length, ensemble_size=15, seed=9)
        second = EnsembleGrammarDetector(case.gt_length, ensemble_size=15, seed=9)
        assert first.detect(case.series, 3) == second.detect(case.series, 3)

    def test_ensemble_parameter_sample_pinned(self):
        detector = EnsembleGrammarDetector(
            window=100, max_paa_size=4, max_alphabet_size=4, ensemble_size=4, seed=123
        )
        sample = detector.sample_parameters()
        assert sorted(sample) == sorted(set(sample))
        assert all(2 <= w <= 4 and 2 <= a <= 4 for w, a in sample)
        # Same seed, fresh detector: identical draw.
        again = EnsembleGrammarDetector(
            window=100, max_paa_size=4, max_alphabet_size=4, ensemble_size=4, seed=123
        ).sample_parameters()
        assert sample == again
