"""Behavioural tests for the paper's quality mechanisms on real pipelines.

These tests verify — on actual planted corpora rather than toy curves —
that the mechanisms the paper motivates behave as claimed:

- Figure 5's claim: high-std member curves localize the anomaly, low-std
  members do not;
- Section 6.1.2's claim: coarse members have systematically larger raw
  densities (why max-normalization is needed);
- GI-Select's premise: tuned parameters cover normal data better than the
  worst grid choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.planting import make_test_case
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.baselines import select_parameters


@pytest.fixture(scope="module")
def ecg_case():
    return make_test_case(DATASETS["TwoLeadECG"], seed=3)


class TestFigureFiveClaim:
    def test_high_std_members_localize_better(self, ecg_case):
        """Average the top-half members (by std) and the bottom-half; the
        top-half combination should put relatively less density on the
        anomaly region than the bottom half does (clearer trough)."""
        detector = EnsembleGrammarDetector(
            window=ecg_case.gt_length, ensemble_size=16, seed=2
        )
        report = detector.ensemble_report(ecg_case.series, keep_member_curves=True)
        order = np.argsort(report.stds)[::-1]
        gt = slice(ecg_case.gt_location, ecg_case.gt_location + ecg_case.gt_length)

        def relative_trough(indices) -> float:
            values = []
            for i in indices:
                curve = report.member_curves[i]
                if curve.max() <= 0:
                    continue
                normalized = curve / curve.max()
                global_mean = normalized.mean()
                if global_mean > 0:
                    values.append(normalized[gt].mean() / global_mean)
            return float(np.mean(values)) if values else 1.0

        top_half = relative_trough(order[: len(order) // 2])
        bottom_half = relative_trough(order[len(order) // 2 :])
        assert top_half <= bottom_half + 0.1, (top_half, bottom_half)


class TestNormalizationClaim:
    def test_coarse_members_have_larger_raw_density(self, ecg_case):
        """Section 6.1.2: small (w, a) -> bigger rule frequencies."""
        window = ecg_case.gt_length
        coarse = GrammarAnomalyDetector(window, paa_size=2, alphabet_size=2)
        fine = GrammarAnomalyDetector(window, paa_size=9, alphabet_size=9)
        coarse_mean = coarse.density_curve(ecg_case.series).mean()
        fine_mean = fine.density_curve(ecg_case.series).mean()
        assert coarse_mean > fine_mean, (coarse_mean, fine_mean)


class TestGISelectPremise:
    def test_selected_covers_better_than_worst(self, ecg_case):
        """The tuned (w, a) leaves less of the normal sample uncovered than
        the worst grid member does."""
        window = ecg_case.gt_length
        sample = ecg_case.series[: 4 * window]
        chosen = select_parameters(sample, window)

        def uncovered(w: int, a: int) -> float:
            curve = GrammarAnomalyDetector(window, w, a).density_curve(sample)
            return float(np.mean(curve == 0))

        chosen_uncovered = uncovered(*chosen)
        worst = max(uncovered(w, a) for w in (2, 6, 10) for a in (2, 6, 10))
        assert chosen_uncovered <= worst + 1e-9

    def test_selection_prefers_compression_on_tie(self):
        """On data every grid cell covers fully, the MDL tiebreak picks a
        compact grammar (not an arbitrary cell)."""
        series = np.tile(np.sin(np.linspace(0, 2 * np.pi, 50, endpoint=False)), 20)
        w, a = select_parameters(series, 50, max_paa_size=6, max_alphabet_size=6)
        detector = GrammarAnomalyDetector(50, w, a)
        grammar = detector.grammar(series)
        tokens = detector.tokenize(series)
        assert grammar.grammar_size() <= max(2 * len(tokens), 12)
