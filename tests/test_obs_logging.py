"""Structured logging: JSON schema, request-id stamping, correlation ids.

Covers :mod:`repro.obs.logging` (both formats, extras, tracebacks,
idempotent setup) and :mod:`repro.obs.context` (id minting, validation of
caller-supplied ids, context binding and reset).
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.context import (
    bind_request_id,
    ensure_request_id,
    get_request_id,
    new_request_id,
)
from repro.obs.logging import get_logger, setup_logging


@pytest.fixture()
def captured():
    """A ``repro`` tree configured to write into a StringIO we can read."""
    stream = io.StringIO()

    def configure(log_format: str = "json", level: str = "debug") -> io.StringIO:
        setup_logging(log_format=log_format, level=level, stream=stream)
        return stream

    yield configure
    # Restore the unconfigured default (propagating, no handlers) so other
    # test modules' caplog assertions keep seeing repro.* records.
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.propagate = True
    logger.setLevel(logging.NOTSET)


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines() if line]


# ----------------------------------------------------------------------
# Request-id context.
# ----------------------------------------------------------------------


def test_new_request_ids_are_unique_and_valid():
    first, second = new_request_id(), new_request_id()
    assert first != second
    assert ensure_request_id(first) == first


def test_ensure_request_id_rejects_junk():
    assert ensure_request_id(None) != ""
    assert ensure_request_id("") != ""
    # Header-injection characters are replaced by a fresh id.
    assert ensure_request_id("bad\nid") not in ("bad\nid", "")
    assert ensure_request_id("x" * 500) != "x" * 500
    # Joined batch ids (comma-separated) survive the round trip.
    assert ensure_request_id("a1,b2") == "a1,b2"


def test_bind_request_id_sets_and_resets():
    assert get_request_id() is None
    with bind_request_id("abc123"):
        assert get_request_id() == "abc123"
        with bind_request_id("nested"):
            assert get_request_id() == "nested"
        assert get_request_id() == "abc123"
    assert get_request_id() is None


# ----------------------------------------------------------------------
# JSON format.
# ----------------------------------------------------------------------


def test_json_lines_have_the_fixed_schema(captured):
    stream = captured()
    get_logger("unit").info("hello %s", "world")
    (line,) = _lines(stream)
    assert line["message"] == "hello world"
    assert line["level"] == "info"
    assert line["logger"] == "repro.unit"
    assert line["request_id"] == "-"
    assert isinstance(line["ts"], float)
    assert line["iso"].endswith("Z")


def test_json_lines_carry_the_bound_request_id(captured):
    stream = captured()
    with bind_request_id("req-42"):
        get_logger("unit").info("first")
        get_logger("other").warning("second")
    get_logger("unit").info("outside")
    lines = _lines(stream)
    assert [line["request_id"] for line in lines] == ["req-42", "req-42", "-"]


def test_json_extras_ride_along_and_plumbing_is_excluded(captured):
    stream = captured()
    get_logger("unit").info(
        "with extras", extra={"duration_ms": 12.5, "path": "/v1/detect", "blob": [1, 2]}
    )
    (line,) = _lines(stream)
    assert line["duration_ms"] == 12.5
    assert line["path"] == "/v1/detect"
    assert line["blob"] == "[1, 2]"  # non-scalar extras are repr()'d
    assert "levelno" not in line and "msecs" not in line


def test_json_traceback_on_exception(captured):
    stream = captured()
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        get_logger("unit").exception("task failed")
    (line,) = _lines(stream)
    assert line["level"] == "error"
    assert "RuntimeError: boom" in line["traceback"]


# ----------------------------------------------------------------------
# Text format and setup semantics.
# ----------------------------------------------------------------------


def test_text_format_includes_request_id(captured):
    stream = captured(log_format="text")
    with bind_request_id("trace-7"):
        get_logger("unit").info("plain line")
    text = stream.getvalue()
    assert "[trace-7]" in text
    assert "plain line" in text


def test_setup_is_idempotent_no_duplicate_lines(captured):
    stream = captured()
    setup_logging(log_format="json", level="debug", stream=stream)
    setup_logging(log_format="json", level="debug", stream=stream)
    get_logger("unit").info("once")
    assert len(_lines(stream)) == 1


def test_level_filters_below_threshold(captured):
    stream = captured(level="warning")
    get_logger("unit").info("dropped")
    get_logger("unit").warning("kept")
    lines = _lines(stream)
    assert [line["message"] for line in lines] == ["kept"]


def test_setup_rejects_unknown_format_and_level():
    with pytest.raises(ValueError, match="log-format"):
        setup_logging(log_format="yaml")
    with pytest.raises(ValueError, match="unknown log level"):
        setup_logging(level="chatty")


def test_get_logger_namespaces_under_repro():
    assert get_logger("service.http").name == "repro.service.http"
    assert get_logger("repro.core").name == "repro.core"
