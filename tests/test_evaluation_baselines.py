"""Unit tests for repro.evaluation.baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anomaly import Anomaly
from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.discord.discords import DiscordDetector
from repro.evaluation.baselines import (
    GIRandomDetector,
    GISelectDetector,
    gi_fix_detector,
    make_baseline_factories,
    select_parameters,
)


@pytest.fixture
def planted_series() -> np.ndarray:
    series = np.sin(np.linspace(0, 80 * np.pi, 4000))
    series[2000:2100] = np.sin(np.linspace(0, 8 * np.pi, 100))
    return series


class TestGIFix:
    def test_uses_w4_a4(self):
        detector = gi_fix_detector(100)
        assert detector.paa_size == 4
        assert detector.alphabet_size == 4
        assert isinstance(detector, GrammarAnomalyDetector)


class TestGIRandom:
    def test_draws_parameters_in_range(self, planted_series):
        detector = GIRandomDetector(100, max_paa_size=6, max_alphabet_size=8, seed=0)
        detector.detect(planted_series, k=1)
        w, a = detector.last_parameters
        assert 2 <= w <= 6
        assert 2 <= a <= 8

    def test_fresh_parameters_per_call(self, planted_series):
        detector = GIRandomDetector(100, seed=1)
        drawn = set()
        for _ in range(8):
            detector.detect(planted_series[:1500], k=1)
            drawn.add(detector.last_parameters)
        assert len(drawn) > 1

    def test_reproducible_stream(self, planted_series):
        a = GIRandomDetector(100, seed=3)
        b = GIRandomDetector(100, seed=3)
        assert a.detect(planted_series, 2) == b.detect(planted_series, 2)

    def test_paa_capped_by_window(self):
        detector = GIRandomDetector(4, max_paa_size=10, seed=0)
        series = np.sin(np.linspace(0, 20 * np.pi, 300))
        detector.detect(series, k=1)
        w, _ = detector.last_parameters
        assert w <= 4

    def test_returns_anomalies(self, planted_series):
        anomalies = GIRandomDetector(100, seed=0).detect(planted_series, k=3)
        assert all(isinstance(a, Anomaly) for a in anomalies)


class TestSelectParameters:
    def test_returns_in_range(self, planted_series):
        w, a = select_parameters(planted_series[:800], 100)
        assert 2 <= w <= 10
        assert 2 <= a <= 10

    def test_prefers_covering_parameters(self):
        """On clean periodic data, the chosen parameters must produce a
        grammar that covers (almost) the whole sample."""
        from repro.core.detector import GrammarAnomalyDetector

        sample = np.sin(np.linspace(0, 40 * np.pi, 2000))
        w, a = select_parameters(sample, 100)
        detector = GrammarAnomalyDetector(100, w, a)
        curve = detector.density_curve(sample)
        assert np.mean(curve == 0) < 0.05

    def test_deterministic(self, planted_series):
        assert select_parameters(planted_series[:600], 100) == select_parameters(
            planted_series[:600], 100
        )

    def test_window_exceeding_sample_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            select_parameters(np.zeros(50), 100)


class TestGISelect:
    def test_tunes_then_detects(self, planted_series):
        detector = GISelectDetector(100)
        anomalies = detector.detect(planted_series, k=3)
        assert detector.last_parameters is not None
        assert len(anomalies) >= 1

    def test_sample_fraction_validation(self):
        with pytest.raises(ValueError, match="sample_fraction"):
            GISelectDetector(100, sample_fraction=0.0)

    def test_sample_at_least_two_windows(self):
        """Short series still get a viable tuning sample."""
        series = np.sin(np.linspace(0, 12 * np.pi, 600))
        detector = GISelectDetector(100, sample_fraction=0.01)
        detector.detect(series, k=1)
        assert detector.last_parameters is not None


class TestBaselineFactories:
    def test_contains_the_five_paper_methods(self):
        factories = make_baseline_factories(seed=0)
        assert set(factories) == {"Proposed", "GI-Random", "GI-Fix", "GI-Select", "Discord"}

    def test_factory_types(self):
        factories = make_baseline_factories(seed=0)
        assert isinstance(factories["Proposed"](100), EnsembleGrammarDetector)
        assert isinstance(factories["GI-Random"](100), GIRandomDetector)
        assert isinstance(factories["GI-Fix"](100), GrammarAnomalyDetector)
        assert isinstance(factories["GI-Select"](100), GISelectDetector)
        assert isinstance(factories["Discord"](100), DiscordDetector)

    def test_parameters_forwarded(self):
        factories = make_baseline_factories(
            max_paa_size=15, max_alphabet_size=12, ensemble_size=25, selectivity=0.2, seed=0
        )
        ensemble = factories["Proposed"](100)
        assert ensemble.max_paa_size == 15
        assert ensemble.max_alphabet_size == 12
        assert ensemble.ensemble_size == 25
        assert ensemble.selectivity == 0.2

    def test_seeded_reproducibility(self, planted_series):
        a = make_baseline_factories(seed=5)["Proposed"](100).detect(planted_series, 2)
        b = make_baseline_factories(seed=5)["Proposed"](100).detect(planted_series, 2)
        assert a == b
