"""Regression tests for benchlib's disk caches and the strict() switch.

Two cache bugs are pinned here:

- ``sweep_ensemble_scores`` built its cache key with
  ``int(selectivity * 100)``, so 0.29 truncated to 28 (binary float) and
  collided with 0.28's file — and ``k`` was missing from the key entirely,
  so callers varying ``k`` were served each other's scores.
- ``run_main_suite`` validated a cached suite by its dataset set alone, so
  a method added to ``METHOD_ORDER`` silently reused a stale suite that
  did not contain it.
"""

from __future__ import annotations

import json
import sys
from types import SimpleNamespace

from repro.cli import find_benchmarks_dir

BENCH_DIR = find_benchmarks_dir()
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import benchlib  # noqa: E402


class TestStrictSwitch:
    def test_default_is_strict(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
        assert benchlib.strict() is True

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_STRICT", "0")
        assert benchlib.strict() is False

    def test_read_per_call_not_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
        assert benchlib.strict() is True
        monkeypatch.setenv("REPRO_BENCH_STRICT", "0")
        assert benchlib.strict() is False


class TestSweepCacheKey:
    SWEEP_KWARGS = dict(ensemble_size=2, n_cases=1, window=40)

    def test_nearby_selectivities_get_distinct_cache_files(self, tmp_path, monkeypatch):
        monkeypatch.setattr(benchlib, "RESULTS_DIR", tmp_path)
        # 0.29 truncates to int(28.999...) = 28 under the old key scheme,
        # which collided with selectivity=0.28's file.
        first = benchlib.sweep_ensemble_scores(
            "GunPoint", selectivity=0.28, **self.SWEEP_KWARGS
        )
        benchlib.sweep_ensemble_scores("GunPoint", selectivity=0.29, **self.SWEEP_KWARGS)
        assert len(list(tmp_path.glob("sweep_*.json"))) == 2

        # Re-reading 0.28 must hit its own cache, not 0.29's.
        poison = [999.0]
        for path in tmp_path.glob("sweep_*.json"):
            if "t0.29" in path.name:
                path.write_text(json.dumps(poison))
        assert (
            benchlib.sweep_ensemble_scores("GunPoint", selectivity=0.28, **self.SWEEP_KWARGS)
            == first
        )
        assert (
            benchlib.sweep_ensemble_scores("GunPoint", selectivity=0.29, **self.SWEEP_KWARGS)
            == poison
        )

    def test_k_is_part_of_the_key(self, tmp_path, monkeypatch):
        monkeypatch.setattr(benchlib, "RESULTS_DIR", tmp_path)
        benchlib.sweep_ensemble_scores("GunPoint", k=1, **self.SWEEP_KWARGS)
        benchlib.sweep_ensemble_scores("GunPoint", k=3, **self.SWEEP_KWARGS)
        names = sorted(path.name for path in tmp_path.glob("sweep_*.json"))
        assert len(names) == 2
        assert any("_k1" in name for name in names)
        assert any("_k3" in name for name in names)

    def test_cache_hit_skips_recompute(self, tmp_path, monkeypatch):
        monkeypatch.setattr(benchlib, "RESULTS_DIR", tmp_path)
        first = benchlib.sweep_ensemble_scores("GunPoint", **self.SWEEP_KWARGS)
        (cache,) = tmp_path.glob("sweep_*.json")
        canned = [0.123]
        cache.write_text(json.dumps(canned))
        assert benchlib.sweep_ensemble_scores("GunPoint", **self.SWEEP_KWARGS) == canned
        assert first != canned


class _StubScores(SimpleNamespace):
    pass


class TestSuiteCacheValidation:
    def _stub_suite(self, monkeypatch, tmp_path):
        """Point benchlib at tmp results and replace the heavy evaluation."""
        monkeypatch.setattr(benchlib, "RESULTS_DIR", tmp_path)
        calls = []

        def fake_evaluate(corpus, factories):
            calls.append(corpus)
            return {
                name: _StubScores(scores=(0.5,)) for name in benchlib.METHOD_ORDER
            }

        monkeypatch.setattr(benchlib, "corpus_for", lambda name, n: name)
        monkeypatch.setattr(benchlib, "make_baseline_factories", lambda seed: {})
        monkeypatch.setattr(benchlib, "evaluate_methods_on_corpus", fake_evaluate)
        return calls

    def _write_cache(self, payload):
        path = benchlib._suite_cache_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))

    def test_complete_cache_is_reused(self, tmp_path, monkeypatch):
        calls = self._stub_suite(monkeypatch, tmp_path)
        cached = {
            dataset: {method: [0.9] for method in benchlib.METHOD_ORDER}
            for dataset in benchlib.DATASET_ORDER
        }
        self._write_cache(cached)
        assert benchlib.run_main_suite() == cached
        assert calls == []

    def test_missing_method_triggers_recompute(self, tmp_path, monkeypatch):
        calls = self._stub_suite(monkeypatch, tmp_path)
        stale = {
            dataset: {method: [0.9] for method in benchlib.METHOD_ORDER}
            for dataset in benchlib.DATASET_ORDER
        }
        # The old validator only checked the dataset set, so a suite cached
        # before a method joined METHOD_ORDER was reused and downstream
        # benches KeyError'd on the missing method.
        del stale[benchlib.DATASET_ORDER[0]][benchlib.METHOD_ORDER[-1]]
        self._write_cache(stale)
        suite = benchlib.run_main_suite()
        assert len(calls) == len(benchlib.DATASET_ORDER)
        for dataset in benchlib.DATASET_ORDER:
            assert set(suite[dataset]) == set(benchlib.METHOD_ORDER)
        # The stale file was replaced on disk, not just bypassed.
        reloaded = json.loads(benchlib._suite_cache_path().read_text())
        assert set(reloaded[benchlib.DATASET_ORDER[0]]) == set(benchlib.METHOD_ORDER)

    def test_missing_dataset_triggers_recompute(self, tmp_path, monkeypatch):
        calls = self._stub_suite(monkeypatch, tmp_path)
        stale = {
            dataset: {method: [0.9] for method in benchlib.METHOD_ORDER}
            for dataset in benchlib.DATASET_ORDER[:-1]
        }
        self._write_cache(stale)
        suite = benchlib.run_main_suite()
        assert len(calls) == len(benchlib.DATASET_ORDER)
        assert set(suite) == set(benchlib.DATASET_ORDER)
