"""Snapshot-curve caching on streams (the ROADMAP follow-on satellite).

The streaming detectors memoize their last snapshot — member curves, the
combined ensemble curve, and the ``detect(k)`` result — keyed by the shared
state's version counter, which bumps on every ``extend()``/``append()`` and
on every horizon advance. The contract tested here:

- repeated polls without new data are answered from the memo (O(1): the
  very same objects come back, nothing is recomputed);
- any new data or horizon movement invalidates the memo;
- cached results are **bitwise identical** to the uncached path — checked
  against a fresh detector fed the same data (whose first poll never hits
  any cache), on unbounded and bounded (sliding/decay) streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector

CONFIG = dict(ensemble_size=6, max_paa_size=5, max_alphabet_size=5)


def feed_series(n: int = 2400) -> np.ndarray:
    rng = np.random.default_rng(7)
    series = np.sin(np.linspace(0, 48 * np.pi, n))
    series += 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 80] *= 0.15
    return series


class TestMemberSnapshotCache:
    def test_repeated_poll_returns_cached_object(self):
        member = StreamingGrammarDetector(window=60, paa_size=4, alphabet_size=4)
        member.extend(feed_series(800))
        first = member.density_curve()
        assert member.density_curve() is first  # memoized, not recomputed

    def test_new_data_invalidates(self):
        member = StreamingGrammarDetector(window=60, paa_size=4, alphabet_size=4)
        series = feed_series(900)
        member.extend(series[:800])
        first = member.density_curve()
        member.extend(series[800:])
        second = member.density_curve()
        assert second is not first
        assert len(second) == 900

    def test_cached_equals_fresh_detector(self):
        series = feed_series(1000)
        polled = StreamingGrammarDetector(window=60, paa_size=4, alphabet_size=4)
        fresh = StreamingGrammarDetector(window=60, paa_size=4, alphabet_size=4)
        for offset in range(0, 1000, 250):
            polled.extend(series[offset : offset + 250])
            polled.density_curve()  # poll every chunk — cache churns
        fresh.extend(series)  # one shot — first poll, no cache involved
        np.testing.assert_array_equal(polled.density_curve(), fresh.density_curve())


class TestEnsembleSnapshotCache:
    def test_repeated_poll_is_o1(self):
        detector = StreamingEnsembleDetector(window=60, seed=0, **CONFIG)
        detector.extend(feed_series(900))
        curve = detector.density_curve()
        assert detector.density_curve() is curve
        first = detector.detect(3)
        second = detector.detect(3)
        assert first == second
        # detect() hands out fresh lists (callers may mutate) over the same
        # cached candidates.
        assert first is not second

    def test_detect_cache_keyed_by_k(self):
        detector = StreamingEnsembleDetector(window=60, seed=0, **CONFIG)
        detector.extend(feed_series(900))
        assert len(detector.detect(3)) >= len(detector.detect(1))
        assert detector.detect(1) == detector.detect(3)[:1]

    @pytest.mark.parametrize("bounded", [None, "sliding", "decay"])
    def test_polled_equals_fresh_across_modes(self, bounded):
        """Poll-every-chunk == feed-everything-then-poll-once, per mode."""
        series = feed_series(2400)
        kwargs = dict(window=60, seed=5, **CONFIG)
        if bounded is not None:
            kwargs.update(capacity=900, policy=bounded)
        polled = StreamingEnsembleDetector(**kwargs)
        fresh = StreamingEnsembleDetector(**kwargs)
        for offset in range(0, 2400, 400):
            polled.extend(series[offset : offset + 400])
            polled.detect(3)  # high-frequency polling
            fresh.extend(series[offset : offset + 400])
        np.testing.assert_array_equal(polled.density_curve(), fresh.density_curve())
        assert polled.detect(3) == fresh.detect(3)

    def test_horizon_advance_invalidates(self):
        detector = StreamingEnsembleDetector(
            window=60, seed=1, capacity=600, policy="sliding", **CONFIG
        )
        series = feed_series(1200)
        detector.extend(series[:600])
        first = detector.density_curve()
        detector.extend(series[600:660])  # horizon moves: curve range shifts
        second = detector.density_curve()
        assert second is not first
        assert detector.horizon_start == 60
        assert len(second) == detector.state.live_length


class TestMemoryEstimates:
    def test_memory_bytes_monotone_in_stream(self):
        detector = StreamingEnsembleDetector(window=60, seed=0, **CONFIG)
        series = feed_series(1200)
        detector.extend(series[:600])
        before = detector.memory_bytes()
        detector.extend(series[600:])
        assert detector.memory_bytes() >= before
        assert detector.memory_bytes() >= detector.state.nbytes

    def test_bounded_memory_estimate_flattens(self):
        """A bounded session's estimate stays within a fixed band forever."""
        detector = StreamingEnsembleDetector(
            window=50, seed=0, capacity=500, policy="sliding", **CONFIG
        )
        rng = np.random.default_rng(0)
        readings = []
        for _ in range(12):
            detector.extend(rng.standard_normal(500))
            readings.append(detector.memory_bytes())
        # The estimate includes the lazily-compacted dead token prefix, so
        # it oscillates in a band — but the band must not grow with the
        # stream (an unbounded stream roughly doubles over these chunks).
        assert max(readings[6:]) <= 1.5 * max(readings[:6])
