"""Unit tests for repro.core.ensemble (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsembleGrammarDetector


@pytest.fixture
def planted_series() -> tuple[np.ndarray, int, int]:
    series = np.sin(np.linspace(0, 80 * np.pi, 4000))
    series[2000:2100] = np.sin(np.linspace(0, 8 * np.pi, 100))
    return series, 2000, 100


class TestParameterSampling:
    def test_samples_unique_combinations(self):
        detector = EnsembleGrammarDetector(
            window=100, max_paa_size=5, max_alphabet_size=5, ensemble_size=16, seed=0
        )
        parameters = detector.sample_parameters()
        assert len(parameters) == 16
        assert len(set(parameters)) == 16  # "any combination used only once"

    def test_sample_ranges(self):
        detector = EnsembleGrammarDetector(
            window=100, max_paa_size=6, max_alphabet_size=8, ensemble_size=50, seed=1
        )
        for w, a in detector.sample_parameters():
            assert 2 <= w <= 6
            assert 2 <= a <= 8

    def test_ensemble_capped_at_pool_size(self):
        detector = EnsembleGrammarDetector(
            window=100, max_paa_size=3, max_alphabet_size=3, ensemble_size=50, seed=0
        )
        parameters = detector.sample_parameters()
        assert len(parameters) == 4  # 2x2 pool

    def test_seeded_sampling_reproducible(self):
        a = EnsembleGrammarDetector(window=100, ensemble_size=20, seed=7).sample_parameters()
        b = EnsembleGrammarDetector(window=100, ensemble_size=20, seed=7).sample_parameters()
        assert a == b


class TestEnsembleReport:
    def test_report_structure(self, planted_series):
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(window=100, ensemble_size=12, seed=0)
        report = detector.ensemble_report(series)
        assert len(report.curve) == len(series)
        assert report.ensemble_size == 12
        assert len(report.stds) == 12
        assert len(report.kept) == max(1, round(0.4 * 12))

    def test_kept_members_have_top_stds(self, planted_series):
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(window=100, ensemble_size=10, seed=0)
        report = detector.ensemble_report(series)
        kept_stds = [report.stds[i] for i in report.kept]
        dropped = [s for i, s in enumerate(report.stds) if i not in report.kept]
        if dropped:
            assert min(kept_stds) >= max(dropped) - 1e-12

    def test_member_curves_retained_on_request(self, planted_series):
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(window=100, ensemble_size=6, seed=0)
        report = detector.ensemble_report(series, keep_member_curves=True)
        assert len(report.member_curves) == 6
        assert all(len(c) == len(series) for c in report.member_curves)

    def test_curve_in_unit_range(self, planted_series):
        """Normalized members combined by median stay within [0, 1]."""
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(window=100, ensemble_size=10, seed=0)
        report = detector.ensemble_report(series)
        assert report.curve.min() >= 0.0
        assert report.curve.max() <= 1.0 + 1e-12


class TestDetection:
    def test_finds_planted_anomaly(self, planted_series):
        series, position, length = planted_series
        detector = EnsembleGrammarDetector(window=100, ensemble_size=20, seed=3)
        anomalies = detector.detect(series, k=3)
        assert any(abs(a.position - position) <= length for a in anomalies)

    def test_reproducible_with_seed(self, planted_series):
        series, _, _ = planted_series
        a = EnsembleGrammarDetector(window=100, ensemble_size=10, seed=5).detect(series)
        b = EnsembleGrammarDetector(window=100, ensemble_size=10, seed=5).detect(series)
        assert a == b

    def test_non_overlapping_candidates(self, planted_series):
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(window=100, ensemble_size=10, seed=0)
        anomalies = detector.detect(series, k=3)
        for i, a in enumerate(anomalies):
            for b in anomalies[i + 1 :]:
                assert not a.overlaps(b)


class TestAblationSwitches:
    def test_selection_disabled_keeps_all(self, planted_series):
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(
            window=100, ensemble_size=8, seed=0, select_members=False
        )
        report = detector.ensemble_report(series)
        assert len(report.kept) == 8

    def test_normalization_disabled_allows_values_above_one(self, planted_series):
        series, _, _ = planted_series
        detector = EnsembleGrammarDetector(
            window=100, ensemble_size=8, seed=0, normalize_members=False
        )
        report = detector.ensemble_report(series)
        assert report.curve.max() > 1.0  # raw rule counts

    def test_combiner_mean(self, planted_series):
        series, position, length = planted_series
        detector = EnsembleGrammarDetector(
            window=100, ensemble_size=10, seed=0, combiner="mean"
        )
        anomalies = detector.detect(series, k=3)
        assert len(anomalies) >= 1


class TestValidation:
    def test_invalid_selectivity(self):
        with pytest.raises(ValueError, match="selectivity"):
            EnsembleGrammarDetector(window=100, selectivity=0.0)

    def test_invalid_combiner(self):
        with pytest.raises(ValueError, match="combiner"):
            EnsembleGrammarDetector(window=100, combiner="vote")

    def test_invalid_ensemble_size(self):
        with pytest.raises(ValueError, match="ensemble_size"):
            EnsembleGrammarDetector(window=100, ensemble_size=0)

    def test_max_paa_must_allow_sampling(self):
        with pytest.raises(ValueError):
            EnsembleGrammarDetector(window=100, max_paa_size=1)

    def test_window_must_fit_series(self):
        detector = EnsembleGrammarDetector(window=200)
        with pytest.raises(ValueError, match="exceeds"):
            detector.detect(np.zeros(100))
