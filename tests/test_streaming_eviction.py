"""Bounded-memory streaming: eviction, grammar forgetting, and parity.

The contract under test (see ``repro/core/streaming.py``):

- the bounded state's prefix sums and window discretization are **bitwise
  identical** to the unbounded path for every window inside the horizon;
- the sliding policy's live tokens are exactly the unbounded token stream
  restricted to ``offset >= horizon_start``, and its density curve is
  bitwise equal to re-inducing over those tokens — across every executor
  backend;
- the decay policy advances the horizon monotonically in generation steps,
  bounds retention by ``capacity + generation_size - 1``, and retires whole
  generations (rules included, by refcount);
- memory-model invariants: buffer allocation stays O(capacity + chunk),
  token lists stay O(live tokens).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import SharedStreamState
from repro.core.executors import make_executor
from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector
from repro.grammar.density import rule_density_curve
from repro.grammar.sequitur import GenerationalSequitur, induce_grammar
from repro.sax.numerosity import TokenSequence


@pytest.fixture
def long_series(rng) -> np.ndarray:
    series = np.sin(np.linspace(0, 160 * np.pi, 8000))
    series += 0.05 * rng.standard_normal(8000)
    series[6500:6600] = np.sin(np.linspace(0, 10 * np.pi, 100))
    return series


def _feed(detector, series, splits):
    previous = 0
    for split in list(splits) + [len(series)]:
        detector.extend(series[previous:split])
        previous = split


def _restricted_tokens(member: StreamingGrammarDetector, start: int):
    """Unbounded member's kept tokens restricted to ``offset >= start``."""
    tokens = member.tokens()
    keep = tokens.offsets >= start
    words = tuple(w for w, k in zip(tokens.words, keep) if k)
    return words, tokens.offsets[keep], tokens.n_windows


def _reference_curve(member: StreamingGrammarDetector, start: int, length: int):
    """Re-induce over the unbounded member's live-restricted tokens."""
    words, offsets, n_windows = _restricted_tokens(member, start)
    tokens = TokenSequence(words, offsets, n_windows, member.window)
    return rule_density_curve(induce_grammar(words), tokens, length, horizon_start=start)


class TestStateEviction:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SharedStreamState(capacity=0)
        with pytest.raises(ValueError, match="eviction policy"):
            SharedStreamState(capacity=100, policy="lru")
        with pytest.raises(ValueError, match="segments"):
            SharedStreamState(capacity=100, segments=0)

    def test_unbounded_trim_is_noop(self, rng):
        state = SharedStreamState()
        state.extend(rng.standard_normal(100))
        assert state.trim() == 0
        assert state.start == 0
        assert state.live_length == 100

    def test_sliding_trim_hits_exact_horizon(self, rng):
        state = SharedStreamState(capacity=50)
        for _ in range(4):
            state.extend(rng.standard_normal(30))
            state.trim()
            assert state.start == max(0, len(state) - 50)
            assert state.live_length == min(len(state), 50)

    def test_decay_trim_advances_in_generation_steps(self, rng):
        state = SharedStreamState(capacity=100, policy="decay", segments=4)
        assert state.generation_size == 25
        starts = []
        for _ in range(20):
            state.extend(rng.standard_normal(17))
            state.trim()
            starts.append(state.start)
            assert state.start % 25 == 0
            assert state.start <= state.horizon_start
            assert state.live_length <= 100 + 25 - 1 + 17  # capacity + step + pre-trim chunk
        assert starts == sorted(starts)
        assert starts[-1] > 0

    def test_evict_to_is_monotone_and_validated(self, rng):
        state = SharedStreamState(capacity=20)
        state.extend(rng.standard_normal(40))
        assert state.evict_to(25) == 25
        assert state.evict_to(10) == 25  # backwards is a no-op
        with pytest.raises(ValueError, match="evict"):
            state.evict_to(100)

    def test_live_prefix_sums_bitwise_equal_unbounded(self, rng):
        values = rng.standard_normal(500) * 1e3
        bounded = SharedStreamState(capacity=120, initial_capacity=8)
        unbounded = SharedStreamState()
        for start in range(0, 500, 37):
            chunk = values[start : start + 37]
            bounded.extend(chunk)
            unbounded.extend(chunk)
            bounded.trim()
        start = bounded.start
        assert np.array_equal(bounded.values, unbounded.values[start:])
        assert np.array_equal(bounded.prefix_sum, unbounded.prefix_sum[start:])
        assert np.array_equal(bounded.prefix_sq, unbounded.prefix_sq[start:])

    def test_paa_rows_bitwise_equal_for_live_windows(self, rng):
        values = np.cumsum(rng.standard_normal(900))
        bounded = SharedStreamState(capacity=300, initial_capacity=4)
        unbounded = SharedStreamState()
        for start in range(0, 900, 111):
            chunk = values[start : start + 111]
            bounded.extend(chunk)
            unbounded.extend(chunk)
            bounded.trim()
        for window, paa_size in [(50, 4), (23, 5), (300, 7)]:
            first = max(bounded.start, 0)
            expected = unbounded.paa_rows(first, window, paa_size)
            assert np.array_equal(bounded.paa_rows(first, window, paa_size), expected)

    def test_paa_rows_before_horizon_raises(self, rng):
        state = SharedStreamState(capacity=100)
        state.extend(rng.standard_normal(250))
        state.trim()
        with pytest.raises(ValueError, match="horizon"):
            state.paa_rows(0, 10, 4)

    def test_paa_rows_stop_bound_tiles_full_matrix(self, rng):
        state = SharedStreamState()
        state.extend(np.cumsum(rng.standard_normal(200)))
        full = state.paa_rows(0, 20, 5)
        blocks = [state.paa_rows(i, 20, 5, stop=i + 48) for i in range(0, 181, 48)]
        assert np.array_equal(np.vstack(blocks), full)

    def test_allocation_stays_bounded(self, rng):
        """The compacting buffer is O(capacity + chunk), not O(stream)."""
        capacity, chunk = 512, 64
        state = SharedStreamState(capacity=capacity, initial_capacity=64)
        for _ in range(400):  # 25,600 points through a 512-point horizon
            state.extend(rng.standard_normal(chunk))
            state.trim()
        assert len(state) == 400 * chunk
        assert state.live_length == capacity
        assert len(state._values) <= 4 * (capacity + chunk)

    def test_append_point_by_point_with_eviction(self, rng):
        values = rng.standard_normal(300)
        bounded = SharedStreamState(capacity=64, initial_capacity=4)
        for value in values:
            bounded.append(float(value))
            bounded.trim()
        assert bounded.live_length == 64
        assert np.array_equal(bounded.values, values[-64:])
        reference = np.concatenate(([0.0], np.cumsum(values)))
        assert np.array_equal(bounded.prefix_sum, reference[-65:])


class TestCapacityBoundaryValidation:
    def test_member_capacity_smaller_than_window_raises(self):
        with pytest.raises(ValueError, match="smaller than one window"):
            StreamingGrammarDetector(window=100, capacity=99)

    def test_ensemble_capacity_smaller_than_window_raises(self):
        with pytest.raises(ValueError, match="smaller than one window"):
            StreamingEnsembleDetector(window=100, ensemble_size=4, seed=0, capacity=50)

    def test_shared_state_capacity_smaller_than_window_raises(self):
        state = SharedStreamState(capacity=50)
        with pytest.raises(ValueError, match="smaller than one"):
            StreamingGrammarDetector(window=100, state=state)

    def test_member_capacity_with_shared_state_rejected(self):
        state = SharedStreamState(capacity=500)
        with pytest.raises(ValueError, match="inherits"):
            StreamingGrammarDetector(window=100, capacity=500, state=state)

    def test_member_policy_or_segments_with_shared_state_rejected(self):
        """A shared state governs eviction: asking the member for a policy it
        cannot honour must fail loudly, not silently fall back."""
        state = SharedStreamState(capacity=500)
        with pytest.raises(ValueError, match="inherits"):
            StreamingGrammarDetector(window=100, policy="decay", state=state)
        with pytest.raises(ValueError, match="inherits"):
            StreamingGrammarDetector(window=100, segments=8, state=state)

    def test_capacity_exactly_one_window(self, long_series):
        """The horizon edge: capacity == window leaves exactly one live window."""
        member = StreamingGrammarDetector(window=100, paa_size=4, alphabet_size=4, capacity=100)
        member.extend(long_series)
        assert member.state.live_length == 100
        assert member.horizon_start == len(long_series) - 100
        curve = member.density_curve()
        assert len(curve) == 100
        candidates = member.detect(3)
        assert len(candidates) == 1  # only one non-overlapping window fits
        assert candidates[0].position == member.horizon_start


class TestSlidingParity:
    def test_tokens_match_unbounded_restriction(self, long_series):
        unbounded = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        bounded = StreamingGrammarDetector(
            window=100, paa_size=5, alphabet_size=5, capacity=2500
        )
        _feed(unbounded, long_series, [3000, 3001, 5500])
        _feed(bounded, long_series, [1234, 4096, 7999])  # different chunking
        start = bounded.horizon_start
        assert start == len(long_series) - 2500
        words, offsets, _ = _restricted_tokens(unbounded, start)
        live = bounded.tokens()
        assert live.words == words
        assert np.array_equal(live.offsets, offsets)

    def test_curve_bitwise_equals_reference_inside_horizon(self, long_series):
        unbounded = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5)
        bounded = StreamingGrammarDetector(
            window=100, paa_size=5, alphabet_size=5, capacity=3000
        )
        _feed(unbounded, long_series, [4000])
        _feed(bounded, long_series, [777, 2048, 6000])
        start = bounded.horizon_start
        reference = _reference_curve(unbounded, start, bounded.state.live_length)
        assert np.array_equal(bounded.density_curve(), reference)

    def test_equals_unbounded_before_any_eviction(self, long_series):
        unbounded = StreamingGrammarDetector(window=50, paa_size=4, alphabet_size=4)
        bounded = StreamingGrammarDetector(
            window=50, paa_size=4, alphabet_size=4, capacity=len(long_series)
        )
        _feed(unbounded, long_series, [2500])
        _feed(bounded, long_series, [2500])
        assert bounded.horizon_start == 0
        assert np.array_equal(bounded.density_curve(), unbounded.density_curve())

    def test_snapshot_mid_stream_then_continue(self, long_series):
        """Mid-stream snapshots must not perturb later bounded results."""
        continuous = StreamingGrammarDetector(window=100, capacity=2000)
        interrupted = StreamingGrammarDetector(window=100, capacity=2000)
        continuous.extend(long_series)
        interrupted.extend(long_series[:4000])
        interrupted.density_curve()  # snapshot mid-stream
        interrupted.detect(2)
        interrupted.extend(long_series[4000:])
        assert np.array_equal(continuous.density_curve(), interrupted.density_curve())

    def test_detect_positions_are_absolute(self, long_series):
        bounded = StreamingGrammarDetector(window=100, paa_size=5, alphabet_size=5, capacity=2000)
        bounded.extend(long_series)
        for anomaly in bounded.detect(3):
            assert anomaly.position >= bounded.horizon_start
            assert anomaly.position + anomaly.length <= len(long_series)

    def test_constant_stream_prunes_to_zero_tokens(self):
        """One run spanning the whole horizon: its token expires, density 0."""
        member = StreamingGrammarDetector(window=10, paa_size=2, alphabet_size=2, capacity=20)
        for _ in range(30):
            member.extend(np.zeros(10))
        assert member.n_tokens == 0
        assert np.array_equal(member.density_curve(), np.zeros(20))
        with pytest.raises(ValueError, match="no live tokens"):
            member.tokens()

    def test_token_lists_stay_bounded(self, rng):
        """The memory claim at the member level: pruned lists do not grow."""
        member = StreamingGrammarDetector(window=20, paa_size=4, alphabet_size=6, capacity=200)
        for _ in range(100):
            member.extend(np.cumsum(rng.standard_normal(100)))
        assert len(member._kept_ids) <= member.n_tokens + 2 * 1024 + 1
        assert member.retired_tokens > 0


class TestDecayPolicy:
    def test_monotone_horizon_and_bounded_retention(self, rng):
        detector = StreamingGrammarDetector(
            window=50, paa_size=4, alphabet_size=4, capacity=400, policy="decay", segments=4
        )
        step = detector.state.generation_size
        assert step == 100
        starts = []
        for _ in range(60):
            detector.extend(rng.standard_normal(37))
            starts.append(detector.horizon_start)
            assert detector.state.live_length <= 400 + step - 1
            assert detector.horizon_start % step == 0
        assert starts == sorted(starts)
        assert starts[-1] > 0

    def test_generations_dropped_wholesale(self, rng):
        detector = StreamingGrammarDetector(
            window=50, paa_size=4, alphabet_size=5, capacity=300, policy="decay", segments=3
        )
        for _ in range(40):
            detector.extend(np.cumsum(rng.standard_normal(100)))
        forgetter = detector._generations
        assert forgetter.retired_generations > 0
        assert forgetter.retired_tokens == detector.retired_tokens
        # Rule utility: every retired rule was referenced at least twice.
        if forgetter.retired_rules:
            assert forgetter.retired_rule_refs >= 2 * forgetter.retired_rules
        # No live token predates the horizon, none was lost.
        live = detector.tokens()
        assert int(live.offsets[0]) >= detector.horizon_start

    def test_single_generation_matches_unbounded(self, rng):
        """Until the first seal, decay is the plain incremental grammar."""
        series = np.cumsum(rng.standard_normal(190))
        unbounded = StreamingGrammarDetector(window=20, paa_size=4, alphabet_size=4)
        decay = StreamingGrammarDetector(
            window=20, paa_size=4, alphabet_size=4, capacity=200, policy="decay", segments=1
        )
        _feed(unbounded, series, [60, 130])
        _feed(decay, series, [45])
        assert np.array_equal(decay.density_curve(), unbounded.density_curve())

    def test_chunking_invariance(self, long_series):
        a = StreamingEnsembleDetector(
            window=100, ensemble_size=5, seed=2, capacity=2000, policy="decay"
        )
        b = StreamingEnsembleDetector(
            window=100, ensemble_size=5, seed=2, capacity=2000, policy="decay"
        )
        _feed(a, long_series, [50, 1024, 1025, 4567])
        _feed(b, long_series, [7000])
        assert a.horizon_start == b.horizon_start
        assert np.array_equal(a.density_curve(), b.density_curve())


class TestGenerationalSequitur:
    def test_validation_and_ordering(self):
        with pytest.raises(ValueError, match="generation_size"):
            GenerationalSequitur(0)
        forgetter = GenerationalSequitur(10)
        forgetter.feed("ab", 15)
        with pytest.raises(ValueError, match="non-decreasing"):
            forgetter.feed("cd", 3)

    def test_seal_and_drop_accounting(self):
        forgetter = GenerationalSequitur(4)
        words = ["ab", "cd", "ab", "cd", "ab", "cd", "ef", "gh"]
        for offset, word in enumerate(words):
            forgetter.feed(word, offset)
        live = forgetter.live_grammars()
        assert [index for index, _, _ in live] == [0, 1]
        assert [count for _, _, count in live] == [4, 4]
        dropped = forgetter.drop_before(4)
        assert dropped == 1
        assert forgetter.retired_generations == 1
        assert forgetter.retired_tokens == 4
        assert forgetter.drop_before(4) == 0  # idempotent
        # The still-growing current generation is never dropped.
        assert forgetter.drop_before(100) == 0
        assert [index for index, _, _ in forgetter.live_grammars()] == [1]

    def test_rules_never_span_generations(self):
        """The decay relaxation: a repeat crossing the boundary is not a rule."""
        single = induce_grammar(["ab", "cd", "ab", "cd"])
        assert single.n_rules > 1  # the repeat compresses in one grammar
        forgetter = GenerationalSequitur(2)
        for offset, word in enumerate(["ab", "cd", "ab", "cd"]):
            forgetter.feed(word, offset)
        for _, grammar, _ in forgetter.live_grammars():
            assert grammar.n_rules == 1  # each generation saw the pair once


class TestEnsembleEvictionParity:
    def _reference_ensemble_curve(self, series, seed, capacity, window=100, size=6):
        """Algorithm 1 over the unbounded members' live-restricted tokens."""
        from repro.core.combiners import combine_curves
        from repro.core.selection import normalize_curve, select_by_std

        unbounded = StreamingEnsembleDetector(window=window, ensemble_size=size, seed=seed)
        unbounded.extend(series)
        start = max(0, len(series) - capacity)
        length = len(series) - start
        curves = [_reference_curve(member, start, length) for member in unbounded.members]
        kept = select_by_std(curves, unbounded.selectivity)
        return combine_curves([normalize_curve(curves[i]) for i in kept])

    def test_sliding_parity_across_executors(self, long_series, executor_kind):
        reference = self._reference_ensemble_curve(long_series, seed=7, capacity=2500)
        with make_executor(executor_kind, 2) as executor:
            bounded = StreamingEnsembleDetector(
                window=100, ensemble_size=6, seed=7, capacity=2500, executor=executor
            )
            _feed(bounded, long_series, [123, 4096, 4097])
            curve = bounded.density_curve()
            anomalies = bounded.detect(3)
        assert np.array_equal(curve, reference)
        for anomaly in anomalies:
            assert anomaly.position >= bounded.horizon_start

    def test_decay_parity_across_executors(self, long_series, executor_kind):
        serial = StreamingEnsembleDetector(
            window=100, ensemble_size=5, seed=9, capacity=2000, policy="decay"
        )
        serial.extend(long_series)
        reference = serial.density_curve()
        with make_executor(executor_kind, 2) as executor:
            bounded = StreamingEnsembleDetector(
                window=100, ensemble_size=5, seed=9, capacity=2000, policy="decay",
                executor=executor,
            )
            _feed(bounded, long_series, [999, 5000])
            curve = bounded.density_curve()
        assert np.array_equal(curve, reference)

    def test_members_share_the_bounded_state(self, long_series):
        detector = StreamingEnsembleDetector(
            window=100, ensemble_size=6, seed=0, capacity=1500
        )
        detector.extend(long_series)
        assert all(member.state is detector.state for member in detector.members)
        assert detector.state.live_length == 1500
        assert all(member.horizon_start == detector.horizon_start for member in detector.members)

    def test_detect_reports_absolute_positions(self, long_series):
        detector = StreamingEnsembleDetector(
            window=100, ensemble_size=8, seed=1, capacity=2500
        )
        detector.extend(long_series)
        anomalies = detector.detect(3)
        assert anomalies
        for anomaly in anomalies:
            assert detector.horizon_start <= anomaly.position
            assert anomaly.position + anomaly.length <= len(long_series)
