"""Unit and property tests for repro.grammar.rules (Grammar introspection)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grammar.rules import Grammar, GrammarRule, RuleOccurrence
from repro.grammar.sequitur import induce_grammar

token_sequences = st.lists(
    st.sampled_from(["aa", "ab", "ba", "bb"]), min_size=1, max_size=100
)


def _expected_occurrences(grammar: Grammar) -> list[RuleOccurrence]:
    """Reference occurrence enumeration via naive recursive expansion."""
    occurrences: list[RuleOccurrence] = []

    def walk(rule_index: int, start: int) -> int:
        position = start
        for element in grammar.rules[rule_index].rhs:
            if isinstance(element, int):
                end = walk(element, position)
                occurrences.append(RuleOccurrence(element, position, end - 1))
                position = end
            else:
                position += 1
        return position

    walk(0, 0)
    return occurrences


class TestGrammarRule:
    def test_str_rendering(self):
        rule = GrammarRule(1, ("ab", 2, "cd"))
        assert str(rule) == "R1 -> ab R2 cd"

    def test_references(self):
        rule = GrammarRule(0, (1, "x", 2, 1))
        assert list(rule.references()) == [1, 2, 1]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            GrammarRule(-1, ("a",))

    def test_reference_zero_rejected(self):
        """R0 can never be referenced (it is the start rule)."""
        with pytest.raises(ValueError, match=">= 1"):
            GrammarRule(1, (0, "a"))


class TestRuleOccurrence:
    def test_token_length(self):
        assert RuleOccurrence(1, 3, 7).token_length == 5

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RuleOccurrence(1, 5, 4)


class TestExpansion:
    def test_expanded_lengths_paper_example(self):
        grammar = induce_grammar(["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"])
        lengths = grammar.expanded_lengths()
        assert lengths[0] == 8
        assert lengths[1] == 3

    def test_expand_subrule(self):
        grammar = induce_grammar(["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"])
        assert grammar.expand(1) == ["ab", "bc", "aa"]

    def test_expand_out_of_range(self):
        grammar = induce_grammar(["a", "b"])
        with pytest.raises(IndexError):
            grammar.expand(5)

    @given(token_sequences)
    def test_lengths_consistent_with_expansion(self, tokens):
        grammar = induce_grammar(tokens)
        lengths = grammar.expanded_lengths()
        for index in range(grammar.n_rules):
            assert lengths[index] == len(grammar.expand(index))

    def test_deep_hierarchy_expansion(self):
        """2^10 tokens of one symbol build a deep rule chain; expansion must
        not recurse (explicit-stack implementation)."""
        tokens = ["x"] * 1024
        grammar = induce_grammar(tokens)
        assert grammar.expand(0) == tokens
        assert grammar.expanded_lengths()[0] == 1024


class TestOccurrences:
    def test_paper_example_occurrences(self):
        grammar = induce_grammar(["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"])
        occurrences = grammar.rule_occurrences()
        spans = [(o.rule_index, o.first_token, o.last_token) for o in occurrences]
        assert spans == [(1, 0, 2), (1, 5, 7)]

    def test_nested_occurrences_counted(self):
        """abcabcabcabc: the 'abc' rule occurs 4 times (all nested)."""
        grammar = induce_grammar(list("abcabcabcabc"))
        occurrences = grammar.rule_occurrences()
        leaf_rule = grammar.n_rules - 1  # deepest rule is numbered last
        leaf_spans = [
            (o.first_token, o.last_token)
            for o in occurrences
            if o.rule_index == leaf_rule
        ]
        assert leaf_spans == [(0, 2), (3, 5), (6, 8), (9, 11)]

    @given(token_sequences)
    def test_occurrences_match_recursive_reference(self, tokens):
        grammar = induce_grammar(tokens)
        actual = sorted(
            grammar.rule_occurrences(),
            key=lambda o: (o.first_token, o.last_token, o.rule_index),
        )
        expected = sorted(
            _expected_occurrences(grammar),
            key=lambda o: (o.first_token, o.last_token, o.rule_index),
        )
        assert actual == expected

    @given(token_sequences)
    def test_occurrence_expansions_match_tokens(self, tokens):
        """Each occurrence's span in the token sequence spells the rule."""
        grammar = induce_grammar(tokens)
        for occurrence in grammar.rule_occurrences():
            expected = grammar.expand(occurrence.rule_index)
            actual = tokens[occurrence.first_token : occurrence.last_token + 1]
            assert actual == expected

    @given(token_sequences)
    def test_occurrence_count_matches_reference_count(self, tokens):
        grammar = induce_grammar(tokens)
        from collections import Counter

        occurrence_counts = Counter(o.rule_index for o in grammar.rule_occurrences())
        for index in range(1, grammar.n_rules):
            assert occurrence_counts[index] >= 2


class TestGrammarSize:
    def test_size_counts_rhs_plus_rule(self):
        grammar = induce_grammar(["a", "b"])
        # R0 -> a b: 2 symbols + 1 rule marker.
        assert grammar.grammar_size() == 3

    @given(token_sequences)
    def test_size_positive_and_bounded(self, tokens):
        grammar = induce_grammar(tokens)
        assert 0 < grammar.grammar_size() <= len(tokens) + 2 * grammar.n_rules
