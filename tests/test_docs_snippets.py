"""Execute every python code block in ``docs/*.md`` so the docs can't rot.

The contract for documentation authors:

- fenced blocks tagged ```` ```python ```` are **executed** by this suite,
  top to bottom, sharing one namespace per file (so a later block may use
  imports from an earlier one). They must be self-contained, fast, and
  assert what they claim.
- anything not meant to run (shell transcripts, API sketches, multi-host
  walkthroughs) uses ```` ```bash ````/```` ```text ```` fences.

README.md is included: its quickstart block is the first thing users run.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return [match.group(1) for match in _FENCE.finditer(path.read_text())]


def test_docs_exist_and_have_executable_snippets():
    """The documented pages exist and at least some carry runnable blocks."""
    names = {path.name for path in DOCS}
    assert {
        "ARCHITECTURE.md",
        "executors.md",
        "streaming.md",
        "serving.md",
        "deployment.md",
        "README.md",
    } <= names
    runnable = [path.name for path in DOCS if _python_blocks(path)]
    assert "ARCHITECTURE.md" in runnable
    assert "executors.md" in runnable
    assert "README.md" in runnable


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_doc_snippets_execute(path, capsys, monkeypatch, tmp_path):
    blocks = _python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python blocks")
    monkeypatch.chdir(tmp_path)  # snippets must not write into the repo
    namespace: dict = {"__name__": f"docsnippet_{path.stem}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover — only on doc rot
            pytest.fail(
                f"{path.name} python block {index} failed: "
                f"{type(error).__name__}: {error}\n---\n{block}"
            )
