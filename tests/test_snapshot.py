"""Session snapshots: bitwise restore, versioning, stores, DetectorConfig.

The contract under test is the crash-recovery foundation of the sharded
serving tier: ``StreamingEnsembleDetector.restore(snapshot())`` yields a
detector whose every *future* poll and append is bitwise identical to the
original's — across kernels (``python``/``fast``), across eviction
policies (unbounded/sliding/decay), and across the wire encoding
(:func:`~repro.service.snapshot.encode_snapshot` /
:func:`~repro.service.snapshot.decode_snapshot`). Version skew — container
or state — is rejected loudly, never half-restored.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

import repro.service.snapshot as snapshot_mod
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.streaming import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_STATE_VERSION,
    SnapshotVersionError,
    StreamingEnsembleDetector,
)
from repro.grammar import _kernel
from repro.service.config import DETECT_FIELDS, DetectorConfig
from repro.service.snapshot import (
    LocalSnapshotStore,
    decode_snapshot,
    encode_snapshot,
)

KERNELS = ("python", "fast")

POLICIES = (
    {},
    {"capacity": 700, "policy": "sliding"},
    {"capacity": 700, "policy": "decay", "segments": 4},
)


def make_feed(seed: int = 9, n: int = 1100) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 22.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[640:700] *= 0.2
    return series


def build(policy: dict, seed: int = 5) -> StreamingEnsembleDetector:
    return StreamingEnsembleDetector(
        window=50,
        max_paa_size=5,
        max_alphabet_size=5,
        ensemble_size=5,
        seed=seed,
        **policy,
    )


def ranked(detector: StreamingEnsembleDetector, k: int = 4) -> list[tuple]:
    return [(a.rank, a.position, a.length, a.score) for a in detector.detect(k)]


class TestBitwiseRestore:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("policy", POLICIES, ids=("unbounded", "sliding", "decay"))
    def test_restore_is_bitwise_identical_now_and_later(self, kernel, policy):
        feed = make_feed()
        with _kernel.use_kernel(kernel):
            original = build(policy)
            original.extend(feed[:600])
            restored = StreamingEnsembleDetector.restore(original.snapshot())
            # Identical immediately...
            assert ranked(restored) == ranked(original)
            np.testing.assert_array_equal(
                restored.density_curve(), original.density_curve()
            )
            # ...and bitwise identical on every future poll as both keep
            # consuming the stream (uneven chunking on purpose).
            boundaries = (600, 733, 901, len(feed))
            for start, stop in zip(boundaries, boundaries[1:]):
                original.extend(feed[start:stop])
                restored.extend(feed[start:stop])
                assert ranked(restored) == ranked(original)
            assert len(restored) == len(original) == len(feed)

    @pytest.mark.parametrize("policy", POLICIES, ids=("unbounded", "sliding", "decay"))
    def test_restore_is_kernel_portable(self, policy):
        """Snapshot under one kernel, restore under the other: identical."""
        feed = make_feed()
        with _kernel.use_kernel("fast"):
            original = build(policy)
            original.extend(feed[:700])
            state = original.snapshot()
            original.extend(feed[700:])
            reference = ranked(original)
        with _kernel.use_kernel("python"):
            restored = StreamingEnsembleDetector.restore(state)
            restored.extend(feed[700:])
            assert ranked(restored) == reference

    def test_snapshot_survives_the_wire_encoding(self):
        feed = make_feed()
        original = build({"capacity": 700, "policy": "decay", "segments": 3})
        original.extend(feed[:800])
        restored = StreamingEnsembleDetector.restore(
            decode_snapshot(encode_snapshot(original.snapshot()))
        )
        original.extend(feed[800:])
        restored.extend(feed[800:])
        assert ranked(restored) == ranked(original)

    def test_restored_session_matches_never_interrupted_run(self):
        """The serving-tier contract in one line: resume == never crashed."""
        feed = make_feed()
        uninterrupted = build({})
        uninterrupted.extend(feed)

        crashed = build({})
        crashed.extend(feed[:500])
        resumed = StreamingEnsembleDetector.restore(crashed.snapshot())
        resumed.extend(feed[500:])
        assert ranked(resumed) == ranked(uninterrupted)


class TestVersioning:
    def test_state_version_skew_is_rejected(self):
        state = build({}).snapshot()
        assert state["format"] == SNAPSHOT_FORMAT
        assert state["state_version"] == SNAPSHOT_STATE_VERSION
        state["state_version"] = SNAPSHOT_STATE_VERSION + 1
        with pytest.raises(SnapshotVersionError, match="state_version"):
            StreamingEnsembleDetector.restore(state)

    def test_foreign_payload_is_rejected(self):
        with pytest.raises(SnapshotVersionError, match="snapshot"):
            StreamingEnsembleDetector.restore({"format": "something-else"})
        with pytest.raises(SnapshotVersionError):
            StreamingEnsembleDetector.restore(42)

    def test_container_version_skew_is_rejected(self, monkeypatch):
        detector = build({})
        detector.extend(make_feed()[:200])
        state = detector.snapshot()
        monkeypatch.setattr(snapshot_mod, "CONTAINER_VERSION", 99)
        future = encode_snapshot(state)
        monkeypatch.undo()
        with pytest.raises(SnapshotVersionError, match="container version"):
            decode_snapshot(future)

    def test_corrupt_container_is_rejected(self):
        with pytest.raises(SnapshotVersionError, match="not a readable"):
            decode_snapshot(b"this is not a zip archive")

    def test_encode_preserves_arrays_bitwise(self):
        state = {
            "floats": np.array([0.1, -1.5e-300, np.pi]),
            "ids": np.array([3, 1, 4], dtype=np.int64),
            "nested": {"inner": np.arange(5, dtype=np.float64), "scalar": 2.5},
            "plain": [1, "two", None],
        }
        decoded = decode_snapshot(encode_snapshot(state))
        np.testing.assert_array_equal(decoded["floats"], state["floats"])
        assert decoded["ids"].dtype == np.int64
        np.testing.assert_array_equal(decoded["ids"], state["ids"])
        np.testing.assert_array_equal(decoded["nested"]["inner"], state["nested"]["inner"])
        assert decoded["nested"]["scalar"] == 2.5
        assert decoded["plain"] == [1, "two", None]


class TestLocalSnapshotStore:
    def test_save_latest_seqs_delete(self, tmp_path):
        store = LocalSnapshotStore(tmp_path, keep=3)
        assert store.latest("feed") is None
        for seq in (1, 2, 3):
            store.save("feed", seq, f"payload-{seq}".encode())
        assert store.seqs("feed") == [1, 2, 3]
        assert store.latest("feed") == (3, b"payload-3")
        assert store.delete("feed") == 3
        assert store.latest("feed") is None

    def test_pruned_to_newest_keep(self, tmp_path):
        store = LocalSnapshotStore(tmp_path, keep=2)
        for seq in range(1, 6):
            store.save("feed", seq, b"x")
        assert store.seqs("feed") == [4, 5]

    def test_sessions_are_isolated(self, tmp_path):
        store = LocalSnapshotStore(tmp_path)
        store.save("a", 1, b"for-a")
        store.save("b", 1, b"for-b")
        assert store.latest("a") == (1, b"for-a")
        assert store.delete("a") == 1
        assert store.latest("b") == (1, b"for-b")

    @pytest.mark.parametrize("name", ["..", ".", "a/b", "", "x" * 65, "nul\x00"])
    def test_traversal_and_junk_names_rejected(self, tmp_path, name):
        store = LocalSnapshotStore(tmp_path)
        with pytest.raises(ValueError, match="session name"):
            store.save(name, 1, b"x")

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            LocalSnapshotStore(tmp_path, keep=0)
        store = LocalSnapshotStore(tmp_path)
        with pytest.raises(ValueError, match="seq"):
            store.save("feed", -1, b"x")


class TestDetectorConfig:
    def test_fingerprint_matches_engine_canonicalization(self):
        config = DetectorConfig(window=50, ensemble_size=5, max_paa_size=5)
        template = EnsembleGrammarDetector(window=50, ensemble_size=5, max_paa_size=5)
        assert config.to_fingerprint() == tuple(sorted(template.clone_kwargs().items()))

    def test_equivalent_spellings_share_a_fingerprint(self):
        loose = DetectorConfig(window=50.0, selectivity=0.4)
        strict = DetectorConfig(window=50)
        assert loose.to_fingerprint() == strict.to_fingerprint()

    def test_sparse_none_keeps_divergent_engine_defaults(self):
        config = DetectorConfig(window=100)
        # One-shot detection defaults to 50 members...
        assert config.resolve()[0]["ensemble_size"] == 50
        # ...while streaming sessions default to 20 — the sparse config
        # must preserve both rather than bake either in.
        detector = StreamingEnsembleDetector(**config.session_kwargs())
        assert detector.ensemble_size == 20

    def test_json_round_trip(self):
        config = DetectorConfig(
            window=80, ensemble_size=6, capacity=500, policy="decay", segments=3, seed=7
        )
        assert DetectorConfig.from_json(config.to_json()) == config
        assert "max_paa_size" not in config.to_json()  # sparse

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration field"):
            DetectorConfig.from_mapping({"window": 50, "wibble": 1})
        with pytest.raises(ValueError, match="unknown configuration field"):
            DetectorConfig.from_mapping({"window": 50, "capacity": 100}, allowed=DETECT_FIELDS)

    def test_window_required(self):
        with pytest.raises(ValueError, match="window"):
            DetectorConfig.from_mapping({"ensemble_size": 5})

    def test_coercion(self):
        assert DetectorConfig(window=50.0).window == 50
        with pytest.raises(ValueError, match="integer"):
            DetectorConfig(window=50.5)
        with pytest.raises(ValueError, match="integer"):
            DetectorConfig(window=True)
        with pytest.raises(ValueError, match="policy"):
            DetectorConfig(window=50, policy="ringbuffer")

    def test_from_cli_args(self):
        args = argparse.Namespace(
            window=60,
            wmax=6,
            amax=6,
            ensemble_size=8,
            selectivity=0.5,
            seed=3,
            stream_capacity=400,
            eviction_policy="sliding",
            segments=4,
        )
        config = DetectorConfig.from_cli_args(args)
        assert config.window == 60
        assert config.max_paa_size == 6
        assert config.capacity == 400
        assert config.policy == "sliding"
        # Without bounded retention the policy knobs stay unset.
        args.stream_capacity = None
        unbounded = DetectorConfig.from_cli_args(args)
        assert unbounded.policy is None and unbounded.segments is None

    def test_describe_is_total(self):
        described = DetectorConfig(window=50).describe()
        assert described["window"] == 50
        assert described["ensemble_size"] is None
        assert set(described) == {
            "window", "max_paa_size", "max_alphabet_size", "ensemble_size",
            "selectivity", "combiner", "numerosity", "znorm_threshold",
            "capacity", "policy", "segments", "seed",
        }
