"""Unit tests for repro.datasets.base and repro.datasets.ucr_like."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import DatasetSpec, SyntheticUCRDataset, smooth_time_warp
from repro.datasets.ucr_like import DATASETS, dataset_by_name

#: The paper's Table 3 rows (name, length, data type).
PAPER_TABLE_3 = {
    "TwoLeadECG": (82, "ECG"),
    "ECGFiveDay": (132, "ECG"),
    "GunPoint": (150, "Motion"),
    "Wafer": (150, "Sensor"),
    "Trace": (275, "Sensor"),
    "StarLightCurve": (1024, "Sensor"),
}


class TestDatasetSpec:
    def test_test_series_length_is_21_instances(self):
        spec = DatasetSpec("X", 100, 2, "Sensor")
        assert spec.test_series_length == 2100

    def test_too_short_instance_rejected(self):
        with pytest.raises(ValueError, match=">= 8"):
            DatasetSpec("X", 4, 2, "Sensor")

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="2 classes"):
            DatasetSpec("X", 100, 1, "Sensor")


class TestSmoothTimeWarp:
    def test_preserves_length_and_endpoints(self, rng):
        values = np.sin(np.linspace(0, 3, 50))
        warped = smooth_time_warp(values, rng, strength=0.05)
        assert len(warped) == 50
        assert warped[0] == pytest.approx(values[0])
        assert warped[-1] == pytest.approx(values[-1])

    def test_zero_strength_identity(self, rng):
        values = np.arange(20.0)
        assert np.array_equal(smooth_time_warp(values, rng, 0.0), values)

    def test_preserves_value_range(self, rng):
        values = np.sin(np.linspace(0, 6, 80))
        warped = smooth_time_warp(values, rng, strength=0.05)
        assert warped.min() >= values.min() - 1e-9
        assert warped.max() <= values.max() + 1e-9


class TestRegistry:
    def test_contains_the_six_paper_datasets(self):
        assert set(DATASETS) == set(PAPER_TABLE_3)

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE_3))
    def test_table_3_properties(self, name):
        dataset = DATASETS[name]
        length, data_type = PAPER_TABLE_3[name]
        assert dataset.spec.instance_length == length
        assert dataset.spec.data_type == data_type
        assert dataset.spec.n_classes >= 2

    def test_lookup_by_name(self):
        assert dataset_by_name("Wafer").spec.name == "Wafer"

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            dataset_by_name("NoSuchDataset")


@pytest.mark.parametrize("name", sorted(PAPER_TABLE_3))
class TestInstanceGeneration:
    def test_instance_shape_and_finiteness(self, name, rng):
        dataset = DATASETS[name]
        for class_id in range(1, dataset.spec.n_classes + 1):
            instance = dataset.generate_instance(class_id, rng)
            assert instance.shape == (dataset.spec.instance_length,)
            assert np.all(np.isfinite(instance))

    def test_instances_z_normalized(self, name, rng):
        instance = DATASETS[name].generate_instance(1, rng)
        assert abs(instance.mean()) < 1e-9
        assert instance.std(ddof=1) == pytest.approx(1.0, abs=1e-9)

    def test_intra_class_variability(self, name, rng):
        dataset = DATASETS[name]
        a = dataset.generate_instance(1, rng)
        b = dataset.generate_instance(1, rng)
        assert not np.allclose(a, b)  # instances vary within a class

    def test_classes_structurally_distinct(self, name):
        """Anomalous classes must differ in shape from the normal class —
        averaged over noise realizations, the class means must disagree."""
        dataset = DATASETS[name]
        rng = np.random.default_rng(0)
        normal = np.mean(
            [dataset.generate_instance(1, rng) for _ in range(10)], axis=0
        )
        for class_id in range(2, dataset.spec.n_classes + 1):
            other = np.mean(
                [dataset.generate_instance(class_id, rng) for _ in range(10)], axis=0
            )
            distance = np.linalg.norm(normal - other) / np.sqrt(len(normal))
            assert distance > 0.1, f"class {class_id} too similar to normal"

    def test_invalid_class_rejected(self, name, rng):
        dataset = DATASETS[name]
        with pytest.raises(ValueError, match="classes"):
            dataset.generate_instance(0, rng)
        with pytest.raises(ValueError, match="classes"):
            dataset.generate_instance(dataset.spec.n_classes + 1, rng)

    def test_deterministic_given_rng(self, name):
        dataset = DATASETS[name]
        a = dataset.generate_instance(1, np.random.default_rng(3))
        b = dataset.generate_instance(1, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestInstanceSourceHelpers:
    def test_normal_instance_is_class_one(self):
        dataset = DATASETS["GunPoint"]
        instance = dataset.normal_instance(0)
        assert instance.shape == (150,)

    def test_anomalous_instance_class_id(self):
        dataset = DATASETS["Trace"]
        _, class_id = dataset.anomalous_instance(0)
        assert 2 <= class_id <= 4

    def test_shape_function_contract_enforced(self, rng):
        bad = SyntheticUCRDataset(
            DatasetSpec("Bad", 16, 2, "Sensor"),
            lambda class_id, unit, generator: np.zeros(3),  # wrong length
        )
        with pytest.raises(ValueError, match="shape function"):
            bad.generate_instance(1, rng)
