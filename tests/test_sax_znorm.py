"""Unit and property tests for repro.sax.znorm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sax.znorm import DEFAULT_ZNORM_THRESHOLD, znorm

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestZnormBasics:
    def test_zero_mean_unit_std(self):
        out = znorm(np.array([1.0, 2.0, 3.0, 4.0]))
        assert out.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.std(ddof=1) == pytest.approx(1.0, abs=1e-12)

    def test_uses_sample_std(self):
        # With ddof=1 the normalized values of [0, 2] are +-1/sqrt(2)*2/2...
        out = znorm(np.array([0.0, 2.0]))
        expected = np.array([-1.0, 1.0]) / np.sqrt(2.0)
        assert np.allclose(out, expected)

    def test_constant_input_centred_not_scaled(self):
        out = znorm(np.full(10, 3.7))
        assert np.allclose(out, 0.0)

    def test_near_constant_below_threshold(self):
        values = np.full(10, 5.0) + 1e-12
        out = znorm(values)
        assert np.allclose(out, 0.0, atol=1e-9)

    def test_near_constant_above_custom_threshold_scaled(self):
        values = np.array([0.0, 1e-3, 0.0, 1e-3])
        out = znorm(values, threshold=1e-6)
        assert out.std(ddof=1) == pytest.approx(1.0)

    def test_single_element(self):
        out = znorm(np.array([42.0]))
        assert np.allclose(out, 0.0)

    def test_empty_returns_empty(self):
        assert znorm(np.array([])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            znorm(np.zeros((2, 3)))

    def test_does_not_mutate_input(self):
        values = np.array([1.0, 2.0, 3.0])
        original = values.copy()
        znorm(values)
        assert np.array_equal(values, original)

    def test_default_threshold_is_small(self):
        assert 0 < DEFAULT_ZNORM_THRESHOLD < 1e-4


class TestZnormProperties:
    @given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
    def test_output_mean_is_zero(self, values):
        out = znorm(values)
        assert abs(out.mean()) < 1e-6

    @given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
    def test_output_std_is_one_or_zero(self, values):
        out = znorm(values)
        std = out.std(ddof=1)
        # Either scaled to unit std, or flagged constant — in which case the
        # residual std is below the (relative) constancy cutoff.
        cutoff = DEFAULT_ZNORM_THRESHOLD * max(1.0, abs(float(values.mean())))
        assert std == pytest.approx(1.0, abs=1e-6) or std < cutoff + 1e-15

    @given(
        arrays(np.float64, st.integers(2, 64), elements=finite_floats),
        st.floats(min_value=0.5, max_value=100.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_offset_amplitude_invariance(self, values, scale, offset):
        """The invariance property the paper's Section 3.1 requires."""
        base = znorm(values)
        transformed = znorm(values * scale + offset)
        assert np.allclose(base, transformed, atol=1e-6)

    @given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
    def test_idempotent(self, values):
        once = znorm(values)
        twice = znorm(once)
        assert np.allclose(once, twice, atol=1e-6)
