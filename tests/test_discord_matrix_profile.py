"""Unit and property tests for repro.discord.matrix_profile."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.discord.matrix_profile import (
    default_exclusion,
    mass,
    matrix_profile_brute,
    matrix_profile_stamp,
    matrix_profile_stomp,
    sliding_dot_products,
)

smooth_values = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def series_and_window(draw):
    n = draw(st.integers(16, 80))
    m = draw(st.integers(4, max(4, n // 3)))
    steps = draw(arrays(np.float64, n, elements=st.floats(-1, 1, allow_nan=False)))
    # Quantize the steps: windows are then either *exactly* constant (the
    # shared constancy convention applies identically in every variant) or
    # have enough variance for the prefix-sum path to be well conditioned.
    # Unquantized near-constant windows are a documented ill-conditioned
    # regime outside the equivalence contract.
    return np.cumsum(np.round(steps, 3)), m


class TestSlidingDotProducts:
    def test_matches_naive(self, rng):
        series = rng.standard_normal(50)
        query = series[10:20]
        dots = sliding_dot_products(query, series)
        naive = np.array([np.dot(query, series[i : i + 10]) for i in range(41)])
        assert np.allclose(dots, naive, atol=1e-8)

    def test_query_longer_than_series_rejected(self):
        with pytest.raises(ValueError, match="longer"):
            sliding_dot_products(np.zeros(10), np.zeros(5))


class TestMass:
    def test_self_distance_zero(self, rng):
        series = rng.standard_normal(64)
        distances = mass(series[5:25], series)
        assert distances[5] == pytest.approx(0.0, abs=1e-6)

    def test_matches_explicit_znorm_distance(self, rng):
        series = np.cumsum(rng.standard_normal(60))
        query = series[7:19]
        distances = mass(query, series)
        m = 12

        def znorm(x):
            return (x - x.mean()) / x.std()

        for i in [0, 20, 48]:
            expected = np.linalg.norm(znorm(query) - znorm(series[i : i + m]))
            assert distances[i] == pytest.approx(expected, abs=1e-6)

    def test_constant_query_convention(self):
        series = np.concatenate([np.ones(10), np.arange(10.0)])
        distances = mass(np.ones(5), series)
        assert distances[0] == pytest.approx(0.0)  # both constant
        assert distances[12] == pytest.approx(np.sqrt(5))  # one constant


class TestDefaultExclusion:
    def test_quarter_window(self):
        assert default_exclusion(100) == 25
        assert default_exclusion(10) == 3  # ceil(2.5)


class TestProfileEquivalence:
    # Tolerance note: near-zero distances between highly correlated
    # subsequences (e.g. on a pure linear ramp) sit on a cancellation floor
    # of ~1e-4 in the dot-product recurrence — the same floor STUMPY has —
    # so equivalence is asserted to 5e-4, far below any discord-ranking
    # relevance (profile values range up to sqrt(2m) ~ several units).
    @given(series_and_window())
    @settings(max_examples=25)
    def test_stomp_matches_brute(self, case):
        series, m = case
        brute = matrix_profile_brute(series, m)
        stomp = matrix_profile_stomp(series, m)
        assert np.allclose(brute.profile, stomp.profile, atol=5e-4)

    @given(series_and_window())
    @settings(max_examples=15)
    def test_stamp_matches_brute(self, case):
        series, m = case
        brute = matrix_profile_brute(series, m)
        stamp = matrix_profile_stamp(series, m)
        assert np.allclose(brute.profile, stamp.profile, atol=5e-4)

    @given(series_and_window())
    @settings(max_examples=15)
    def test_neighbour_indices_valid(self, case):
        series, m = case
        profile = matrix_profile_stomp(series, m)
        exclusion = profile.exclusion
        for i, j in enumerate(profile.indices):
            if j >= 0:
                assert abs(i - j) > exclusion


class TestProfileProperties:
    def test_profile_length(self, rng):
        series = rng.standard_normal(100)
        profile = matrix_profile_stomp(series, 10)
        assert len(profile) == 91

    def test_symmetric_distance_consistency(self, rng):
        """profile[i] <= d(i, j) for every j, by 1-NN definition."""
        series = np.cumsum(rng.standard_normal(60))
        m = 8
        profile = matrix_profile_stomp(series, m)

        def znorm_dist(i, j):
            a = series[i : i + m]
            b = series[j : j + m]
            a = (a - a.mean()) / a.std()
            b = (b - b.mean()) / b.std()
            return np.linalg.norm(a - b)

        rng2 = np.random.default_rng(0)
        for _ in range(20):
            i, j = rng2.integers(0, len(profile), 2)
            if abs(i - j) > profile.exclusion:
                assert profile.profile[i] <= znorm_dist(i, j) + 1e-6

    def test_planted_anomaly_has_max_profile(self):
        series = np.sin(np.linspace(0, 40 * np.pi, 1200))
        series[600:640] = series[600:640] * 0.2 + 1.0
        profile = matrix_profile_stomp(series, 40)
        peak = int(np.argmax(profile.profile))
        assert 560 <= peak <= 660

    def test_constant_series_zero_profile(self):
        profile = matrix_profile_stomp(np.full(50, 2.5), 8)
        assert np.allclose(profile.profile, 0.0)

    def test_exclusion_zone_override(self, rng):
        series = rng.standard_normal(50)
        profile = matrix_profile_stomp(series, 8, exclusion=1)
        assert profile.exclusion == 1

    def test_window_equal_series_no_neighbour(self, rng):
        series = rng.standard_normal(20)
        profile = matrix_profile_stomp(series, 20)
        # Single subsequence, no non-trivial neighbour.
        assert profile.indices[0] == -1
        assert np.isinf(profile.profile[0])
