"""Unit and property tests for repro.grammar.sequitur (Sequitur induction)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grammar.rules import Grammar
from repro.grammar.sequitur import induce_grammar

token_sequences = st.lists(
    st.sampled_from(["aa", "ab", "ba", "bb", "cc"]), min_size=1, max_size=120
)


class TestPaperExamples:
    def test_table_2_final_grammar(self):
        """The paper's Eq. (4) sequence: R0 -> R* cc ca R*, R* -> ab bc aa."""
        grammar = induce_grammar(["ab", "bc", "aa", "cc", "ca", "ab", "bc", "aa"])
        assert grammar.rules[0].rhs == (1, "cc", "ca", 1)
        assert grammar.rules[1].rhs == ("ab", "bc", "aa")
        assert grammar.n_rules == 2

    def test_table_1_grammar(self):
        """The paper's Eq. (1) sequence: xx is incompressible."""
        grammar = induce_grammar(["aa", "bb", "cc", "xx", "aa", "bb", "cc"])
        assert grammar.rules[0].rhs == (1, "xx", 1)
        assert grammar.rules[1].rhs == ("aa", "bb", "cc")

    def test_incompressible_token_not_in_rules(self):
        grammar = induce_grammar(["aa", "bb", "cc", "xx", "aa", "bb", "cc"])
        for rule in grammar.rules[1:]:
            assert "xx" not in rule.rhs


class TestBasicSequences:
    def test_single_token(self):
        grammar = induce_grammar(["ab"])
        assert grammar.n_rules == 1
        assert grammar.rules[0].rhs == ("ab",)

    def test_two_distinct_tokens(self):
        grammar = induce_grammar(["ab", "cd"])
        assert grammar.rules[0].rhs == ("ab", "cd")

    def test_repeated_pair_forms_rule(self):
        grammar = induce_grammar(["ab", "cd", "ab", "cd"])
        assert grammar.n_rules == 2
        assert grammar.rules[0].rhs == (1, 1)
        assert grammar.rules[1].rhs == ("ab", "cd")

    def test_run_of_identical_tokens(self):
        """aaaa -> R0: R1 R1, R1: a a (overlap handling)."""
        grammar = induce_grammar(["a"] * 4)
        assert grammar.expand(0) == ["a"] * 4
        assert grammar.n_rules == 2

    def test_odd_run_of_identical_tokens(self):
        grammar = induce_grammar(["a"] * 7)
        assert grammar.expand(0) == ["a"] * 7

    def test_triple_abc(self):
        grammar = induce_grammar(list("abcabcabc"))
        assert grammar.expand(0) == list("abcabcabc")

    def test_nested_hierarchy(self):
        grammar = induce_grammar(list("abcabcabcabc"))
        # 12 tokens = ((abc)(abc))((abc)(abc)): three levels.
        assert grammar.n_rules == 3
        assert grammar.expand(0) == list("abcabcabcabc")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            induce_grammar([])

    def test_non_string_tokens_rejected(self):
        with pytest.raises(TypeError, match="strings"):
            induce_grammar([1, 2, 3])

    def test_accepts_generator_input(self):
        grammar = induce_grammar(word for word in ["aa", "bb", "aa", "bb"])
        assert grammar.expand(0) == ["aa", "bb", "aa", "bb"]


class TestInvariants:
    @given(token_sequences)
    def test_expansion_reconstructs_input(self, tokens):
        """The fundamental Sequitur correctness property."""
        grammar = induce_grammar(tokens)
        assert grammar.expand(0) == tokens

    @given(token_sequences)
    def test_rule_utility(self, tokens):
        """Every rule except R0 is referenced at least twice."""
        grammar = induce_grammar(tokens)
        counts = {index: 0 for index in range(1, grammar.n_rules)}
        for rule in grammar.rules:
            for reference in rule.references():
                counts[reference] += 1
        for index, count in counts.items():
            assert count >= 2, f"R{index} referenced {count} time(s)"

    @given(token_sequences)
    def test_digram_uniqueness(self, tokens):
        """No digram occurs more than once across all rule bodies.

        Adjacent-overlapping repeats inside a run of one symbol (e.g. the
        digram 'a a' in 'a a a') are exempt, exactly as in Sequitur itself.
        """
        grammar = induce_grammar(tokens)
        seen: dict[tuple, tuple[int, int]] = {}
        for rule in grammar.rules:
            rhs = rule.rhs
            for position in range(len(rhs) - 1):
                digram = (rhs[position], rhs[position + 1])
                if digram in seen:
                    previous_rule, previous_position = seen[digram]
                    overlapping_run = (
                        previous_rule == rule.index
                        and digram[0] == digram[1]
                        and position == previous_position + 1
                    )
                    assert overlapping_run, f"digram {digram} repeats"
                seen[digram] = (rule.index, position)

    @given(token_sequences)
    def test_rule_bodies_at_least_two_symbols(self, tokens):
        grammar = induce_grammar(tokens)
        for rule in grammar.rules[1:]:
            assert len(rule.rhs) >= 2

    @given(token_sequences)
    def test_compression_never_longer(self, tokens):
        """Total grammar symbols never exceed input length + small overhead."""
        grammar = induce_grammar(tokens)
        total = sum(len(rule.rhs) for rule in grammar.rules)
        assert total <= len(tokens) + grammar.n_rules

    @given(token_sequences)
    def test_deterministic(self, tokens):
        assert induce_grammar(tokens) == induce_grammar(list(tokens))

    def test_highly_repetitive_compresses_well(self):
        tokens = ["ab", "cd"] * 64  # 128 tokens
        grammar = induce_grammar(tokens)
        total = sum(len(rule.rhs) for rule in grammar.rules)
        assert total <= 30  # hierarchical rules: O(log n) grammar
        assert grammar.expand(0) == tokens


class TestGrammarValidation:
    def test_rules_must_be_in_index_order(self):
        from repro.grammar.rules import GrammarRule

        with pytest.raises(ValueError, match="index order"):
            Grammar((GrammarRule(1, ("a",)),))

    def test_undefined_reference_rejected(self):
        from repro.grammar.rules import GrammarRule

        with pytest.raises(ValueError, match="undefined rule"):
            Grammar((GrammarRule(0, (5, "a")),))

    def test_empty_grammar_rejected(self):
        with pytest.raises(ValueError, match="at least R0"):
            Grammar(())
