"""Machine fingerprint: what hardware/software produced a bench record.

Every NDJSON record, summary, and committed baseline carries this
fingerprint so a number is never read without knowing where it came from —
comparing absolute wall clock across different CPUs is meaningless, and
the regression gate widens its tolerance when the fingerprints disagree
(see :mod:`runner.compare`).

The fingerprint is computed once per process and cached: records written
at the start and end of a long matrix run must agree bitwise (asserted in
``tests/test_bench_runner.py``), and the git SHA must not drift mid-run.
"""

from __future__ import annotations

import functools
import os
import platform
import subprocess
import sys
from pathlib import Path

#: Fields every fingerprint carries (schema contract, used by tests).
FINGERPRINT_FIELDS = (
    "cpu_model",
    "cpu_count",
    "platform",
    "python",
    "numpy",
    "kernel",
    "git_sha",
)


def _cpu_model() -> str:
    """The CPU model string (``/proc/cpuinfo`` on Linux, else the arch)."""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _repo_root() -> Path:
    # runner/machine.py -> runner -> benchmarks -> repo root.
    return Path(__file__).resolve().parents[2]


def git_sha() -> str:
    """The commit the numbers were measured at (``GITHUB_SHA`` in CI).

    Falls back to ``git rev-parse HEAD`` of the repo this file lives in,
    then to ``"unknown"`` — a record is still valid outside a checkout.
    """
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        out = subprocess.run(
            ["git", "-C", str(_repo_root()), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


@functools.lru_cache(maxsize=1)
def machine_fingerprint() -> dict:
    """The cached per-process fingerprint dict (keys: FINGERPRINT_FIELDS).

    ``kernel`` is the *resolved* grammar kernel (``REPRO_KERNEL`` or the
    default), not the raw environment variable, so records distinguish an
    explicit ``fast`` from an implicit one only by this one field's value.
    """
    import numpy

    from repro.grammar import _kernel

    return {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "kernel": _kernel.current_kernel(),
        "git_sha": git_sha(),
    }
