"""The benchmark matrix runner behind ``repro bench``.

One config-driven harness replaces the per-bench hand-rolled timing and
divergent ``json.dumps(payload)`` shapes:

- :mod:`runner.matrix` loads the declarative spec
  (``benchmarks/bench_matrix.toml``): workloads x their axes (executor,
  series length, kernel), warmup/repeat counts, per-metric units and
  regression tolerances.
- :mod:`runner.workloads` registers the measured hot paths — the same
  functions the ``bench_*.py`` scripts call, so the narrative benches and
  the matrix measure one code path.
- :mod:`runner.schema` defines the one normalized record shape: NDJSON
  (one record per metric per cell) plus a summary JSON, each carrying the
  machine fingerprint and git SHA from :mod:`runner.machine`.
- :mod:`runner.compare` is the noise-aware regression gate against the
  committed per-metric baselines in ``benchmarks/baselines/``.
- :mod:`runner.cli` is the ``repro bench`` entry point (run / --list /
  --compare / --update-baselines / --ci).

Measurement itself (warmup + N repeats, median/IQR) lives in
:mod:`repro.utils.timing` — library code, so it is importable without the
benchmarks tree.
"""

from __future__ import annotations
