"""The measured hot paths, registered once, shared by matrix and benches.

Each public ``*_once`` function performs **one repeat** of a measurement
and returns raw results (elapsed seconds plus whatever a narrative bench
needs for its parity checks); the registered matrix wrappers normalize one
repeat into a ``{metric_name: value}`` dict. The runner core then applies
the warmup + N-repeats + median/IQR protocol from
:mod:`repro.utils.timing` — no workload hand-rolls its own timing loop.

The ``bench_*.py`` scripts import the same ``*_once`` functions for their
narrative tables, so the matrix numbers and the bench numbers are by
construction measurements of the same code path.
"""

from __future__ import annotations

import numpy as np

from repro.core.streaming import StreamingEnsembleDetector, StreamingGrammarDetector
from repro.datasets.generators import random_walk
from repro.grammar import _kernel
from repro.grammar.sequitur import _SequiturBuilder
from repro.utils.timing import Timer

#: name -> callable(**params) -> {metric: value}; one entry per
#: ``[workloads.*]`` table in ``bench_matrix.toml``.
REGISTRY: dict = {}


def register(name: str):
    """Class the decorated function as the matrix workload ``name``."""

    def _decorator(fn):
        if name in REGISTRY:
            raise ValueError(f"workload {name!r} registered twice")
        REGISTRY[name] = fn
        return fn

    return _decorator


# One series per (points, seed), shared across repeats and workloads:
# generation is not part of any measurement.
_series_cache: dict[tuple[int, int], np.ndarray] = {}


def cached_series(points: int, seed: int = 0) -> np.ndarray:
    """A deterministic random-walk series, generated once per process."""
    key = (int(points), int(seed))
    if key not in _series_cache:
        _series_cache[key] = random_walk(key[0], seed=key[1])
    return _series_cache[key]


def make_token_stream(tokens: int, alphabet: int, seed: int = 0):
    """A deterministic id stream plus its word spelling (for the oracle)."""
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, alphabet, size=tokens)
    words = [f"w{i}" for i in range(alphabet)]
    return ids, [words[i] for i in ids]


# ----------------------------------------------------------------------
# Grammar stage: feed + occurrence spans, per token.
# ----------------------------------------------------------------------


def grammar_stage_once(
    kernel: str, tokens: int, alphabet: int = 40, seed: int = 0
) -> tuple[float, tuple]:
    """One grammar-stage run: returns ``(elapsed_s, occurrence_spans)``.

    ``kernel="python"`` runs the reference word-fed oracle
    (:class:`_SequiturBuilder`); any other kernel name runs the id-based
    builder from :func:`repro.grammar._kernel.make_builder`. Returning the
    spans lets callers (the grammar bench, the parity tests) assert
    cross-kernel span equality on the exact stream that was timed.
    """
    ids, words = make_token_stream(tokens, alphabet, seed)
    if kernel == "python":
        builder = _SequiturBuilder()
        with Timer() as timer:
            feed = builder.feed
            for word in words:
                feed(word)
            spans = builder.freeze().occurrence_spans()
    else:
        fast = _kernel.make_builder(kernel)
        with Timer() as timer:
            fast.feed_many(ids)
            spans = fast.occurrence_spans()
    return timer.elapsed, spans


@register("grammar_tokens")
def _grammar_tokens(*, kernel: str, tokens: int, alphabet: int = 40, seed: int = 0):
    elapsed, _ = grammar_stage_once(kernel, tokens, alphabet, seed)
    return {"us_per_token": elapsed / tokens * 1e6}


# ----------------------------------------------------------------------
# Streaming detector: end-to-end per-point cost (ingest + density poll).
# ----------------------------------------------------------------------


def stream_per_point_once(
    kernel: str,
    points: int,
    window: int = 100,
    paa_size: int = 4,
    alphabet_size: int = 4,
    seed: int = 0,
    chunk: int = 10_000,
) -> float:
    """Seconds per point: chunked ``extend`` plus one final density poll."""
    series = cached_series(points, seed)
    with _kernel.use_kernel(kernel):
        detector = StreamingGrammarDetector(
            window=window, paa_size=paa_size, alphabet_size=alphabet_size
        )
        with Timer() as timer:
            for offset in range(0, len(series), chunk):
                detector.extend(series[offset : offset + chunk])
            detector.density_curve()
    return timer.elapsed / len(series)


@register("streaming_points")
def _streaming_points(
    *,
    kernel: str,
    points: int,
    window: int = 100,
    paa_size: int = 4,
    alphabet_size: int = 4,
    seed: int = 0,
):
    per_point = stream_per_point_once(kernel, points, window, paa_size, alphabet_size, seed)
    return {"us_per_point": per_point * 1e6}


# ----------------------------------------------------------------------
# Sliding-policy poll latency at bounded capacity.
# ----------------------------------------------------------------------


def poll_latency_curve(
    series: np.ndarray,
    checkpoints: list[int],
    capacity: int,
    window: int = 100,
    paa_size: int = 4,
    alphabet_size: int = 4,
    poll_chunk: int = 500,
    polls: int = 15,
) -> list[dict]:
    """Steady-state poll latency at each checkpoint of one growing stream.

    At every checkpoint, ``polls`` cycles each ingest ``poll_chunk`` points
    (advancing the horizon, so the poll cannot reuse a cached curve or
    builder) and time the density snapshot that follows; the row records
    the median. This is the curve behind the kernel bench's flat-latency
    gate and the matrix's ``sliding_poll`` workload.
    """
    detector = StreamingGrammarDetector(
        window=window,
        paa_size=paa_size,
        alphabet_size=alphabet_size,
        capacity=capacity,
        policy="sliding",
    )
    curve = []
    fed = 0
    for checkpoint in checkpoints:
        lead_in = checkpoint - polls * poll_chunk
        detector.extend(series[fed:lead_in])
        fed = lead_in
        samples = []
        while fed < checkpoint:
            detector.extend(series[fed : fed + poll_chunk])
            fed += poll_chunk
            with Timer() as timer:
                detector.density_curve()
            samples.append(timer.elapsed)
        curve.append(
            {
                "points_ingested": checkpoint,
                "live_tokens": detector.n_tokens,
                "poll_ms_median": float(np.median(samples) * 1e3),
            }
        )
    return curve


@register("sliding_poll")
def _sliding_poll(
    *,
    points: int,
    capacity: int,
    window: int = 100,
    paa_size: int = 4,
    alphabet_size: int = 4,
    seed: int = 0,
):
    series = cached_series(points, seed)
    curve = poll_latency_curve(series, [points], capacity, window, paa_size, alphabet_size)
    return {"poll_ms": curve[-1]["poll_ms_median"]}


# ----------------------------------------------------------------------
# Shared multi-window discretization front end (the plan sweep).
# ----------------------------------------------------------------------


def paa_multiwindow_once(
    kernel: str,
    points: int,
    window: int = 100,
    paa_sizes: tuple = (3, 4, 5, 6, 7, 8),
    seed: int = 0,
) -> tuple[float, object]:
    """One shared sweep emitting every PAA + interval matrix; returns the sweep.

    Measures the :class:`~repro.sax.plan.DiscretizationSweep` front half —
    shared window statistics, one PAA matrix and one merged-table search per
    distinct PAA size — under the selected ``REPRO_KERNEL``. Prefix sums are
    built outside the timed region (they are series-level setup shared with
    every other stage).
    """
    from repro.sax.paa import CumulativeStats
    from repro.sax.plan import DiscretizationPlan

    series = cached_series(points, seed)
    stats = CumulativeStats(series)
    plan = DiscretizationPlan(
        window,
        [(int(w), 10) for w in paa_sizes],
        max_alphabet_size=10,
    )
    with _kernel.use_kernel(kernel):
        with Timer() as timer:
            sweep = plan.sweep_series(stats)
            for paa_size in paa_sizes:
                sweep.interval_rows(int(paa_size))
    return timer.elapsed, sweep


@register("paa_multiwindow")
def _paa_multiwindow(
    *, kernel: str, points: int, window: int = 100, seed: int = 0
):
    paa_sizes = (3, 4, 5, 6, 7, 8)
    elapsed, sweep = paa_multiwindow_once(kernel, points, window, paa_sizes, seed)
    rows = len(sweep) * len(paa_sizes)
    return {"us_per_row": elapsed / rows * 1e6}


def discretize_once(
    kernel: str,
    points: int,
    members: int,
    window: int = 100,
    seed: int = 0,
) -> tuple[float, list]:
    """One full ensemble discretization front end: symbols for every member.

    Samples the same distinct ``(w, a)`` bag an ensemble would (via the
    ensemble's own RNG protocol) and emits every member's symbol matrix from
    one shared sweep — the complete tokenize stage minus grammar feeding.
    Returns the per-member symbol matrices so narrative benches can
    parity-check them against the naive per-member path.
    """
    from repro.sax.paa import CumulativeStats
    from repro.sax.plan import DiscretizationPlan
    from repro.utils.rng import ensure_rng

    series = cached_series(points, seed)
    rng = ensure_rng(seed)
    pool = [(w, a) for w in range(2, 11) for a in range(2, 11)]
    chosen = rng.choice(len(pool), size=min(members, len(pool)), replace=False)
    configs = [pool[int(i)] for i in chosen]
    stats = CumulativeStats(series)
    plan = DiscretizationPlan(window, configs, max_alphabet_size=10)
    with _kernel.use_kernel(kernel):
        with Timer() as timer:
            sweep = plan.sweep_series(stats)
            matrices = [sweep.symbol_rows(w, a) for w, a in configs]
    return timer.elapsed, matrices


@register("discretize")
def _discretize(
    *, kernel: str, points: int, members: int, window: int = 100, seed: int = 0
):
    elapsed, matrices = discretize_once(kernel, points, members, window, seed)
    windows = sum(len(matrix) for matrix in matrices)
    return {"us_per_member_window": elapsed / windows * 1e6}


# ----------------------------------------------------------------------
# Ensemble streaming ingest (the engine's vectorized shared-state path).
# ----------------------------------------------------------------------


def ensemble_ingest_once(
    points: int, members: int, window: int = 100, seed: int = 0
) -> tuple[float, StreamingEnsembleDetector]:
    """One full-stream ingest into a fresh ensemble; returns the detector.

    The detector comes back so the engine bench can parity-check its
    members' kept tokens against the seed per-point replica.
    """
    series = cached_series(points, seed)
    with Timer() as timer:
        detector = StreamingEnsembleDetector(
            window=window, ensemble_size=members, seed=seed
        )
        detector.extend(series)
    return timer.elapsed, detector


@register("ensemble_ingest")
def _ensemble_ingest(*, points: int, members: int, window: int = 100, seed: int = 0):
    elapsed, _ = ensemble_ingest_once(points, members, window, seed)
    return {"us_per_point": elapsed / points * 1e6}


# ----------------------------------------------------------------------
# Batch detection across executor backends.
# ----------------------------------------------------------------------


def detect_batch_once(
    executor: str,
    n_series: int,
    points: int,
    window: int = 100,
    ensemble: int = 8,
    seed: int = 0,
) -> float:
    """Seconds for one ``detect_batch`` over ``n_series`` fresh series.

    The executor pool is built *outside* the timed region: the matrix cell
    measures batch compute + dispatch, not pool spawn (pool-spawn
    amortization is ``bench_executor_reuse``'s subject).
    """
    from repro.core.ensemble import EnsembleGrammarDetector
    from repro.core.executors import as_executor

    batch = [cached_series(points, seed + i) for i in range(n_series)]
    if executor == "serial":
        detector = EnsembleGrammarDetector(window=window, ensemble_size=ensemble, seed=seed)
        with Timer() as timer:
            detector.detect_batch(batch, 3)
        return timer.elapsed
    with as_executor(executor, 2) as pool:
        detector = EnsembleGrammarDetector(
            window=window, ensemble_size=ensemble, seed=seed, executor=pool
        )
        detector.detect_batch(batch[:1], 3)  # warm the lazy pool
        with Timer() as timer:
            detector.detect_batch(batch, 3)
        return timer.elapsed


@register("detect_batch")
def _detect_batch(
    *,
    executor: str,
    n_series: int,
    points: int,
    window: int = 100,
    ensemble: int = 8,
    seed: int = 0,
):
    elapsed = detect_batch_once(executor, n_series, points, window, ensemble, seed)
    return {"ms_per_series": elapsed / n_series * 1e3}


# ----------------------------------------------------------------------
# Dispatch overhead: near-empty tasks over one shared series.
# ----------------------------------------------------------------------


def touch_task(payload) -> float:
    """Minimal worker task: materialize the series, return a checksum.

    The work is negligible on purpose — a burst of these isolates the
    per-task dispatch round trip (lease + pickle + transport + result) of
    whatever backend runs them. Shared by the executor and cluster benches.
    """
    from repro.core.executors import resolve_series

    return float(resolve_series(payload)[::500].sum())


def dispatch_overhead_once(executor, series: np.ndarray, tasks: int = 40) -> float:
    """Seconds per task for a burst of ``tasks`` touch tasks on a live executor."""
    with executor.share_series(series) as handle:
        payloads = [handle.ref] * tasks
        expected = touch_task(np.asarray(series))
        with Timer() as timer:
            results = executor.map(touch_task, payloads)
    assert all(value == expected for value in results)
    return timer.elapsed / tasks


@register("dispatch")
def _dispatch(*, executor: str, points: int, tasks: int = 40, workers: int = 2, seed: int = 0):
    from repro.core.cluster import ClusterExecutor
    from repro.core.executors import ProcessExecutor

    series = cached_series(points, seed)
    if executor == "process":
        with ProcessExecutor(workers) as pool:
            pool.map(touch_task, [np.zeros(1)])  # spawn outside the measurement
            per_task = dispatch_overhead_once(pool, series, tasks)
    elif executor == "cluster":
        with ClusterExecutor(workers, worker_wait=120.0, lease_timeout=30.0) as cluster:
            cluster.start(wait=True)
            per_task = dispatch_overhead_once(cluster, series, tasks)
    else:
        raise ValueError(f"dispatch workload: unsupported executor {executor!r}")
    return {"ms_per_task": per_task * 1e3}


# ----------------------------------------------------------------------
# Serving throughput: micro-batched concurrent clients.
# ----------------------------------------------------------------------


def service_best_rps(
    *,
    clients: int,
    workers: int,
    rounds: int = 3,
    max_batch_size: int | None = None,
    batch_window: float = 0.005,
    cache_entries: int = 0,
    repeat_requests: bool = False,
    series_points: int = 48,
) -> tuple[float, dict]:
    """Best-of-``rounds`` requests/second for one service configuration.

    ``repeat_requests=False`` gives every round fresh series/seeds (nothing
    cacheable); ``True`` re-sends one fixed request set every round, so
    with a cache all rounds after the first are pure hits. Returns
    ``(best_rps, batcher_stats)`` — the stats let callers assert that
    coalescing actually happened.
    """
    import asyncio
    import time as _time

    from repro.service import DetectService

    config = dict(window=10, ensemble_size=9, max_paa_size=10, max_alphabet_size=2)
    max_batch_size = clients if max_batch_size is None else max_batch_size

    def _client_series(seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        t = np.linspace(0.0, 6.0 * np.pi, series_points)
        return np.sin(t) + 0.05 * rng.standard_normal(series_points)

    async def _run() -> tuple[float, dict]:
        async with DetectService(
            executor="process",
            n_jobs=workers,
            batch_window=batch_window,
            max_batch_size=max_batch_size,
            max_pending=4 * clients,
            cache_entries=cache_entries,
            default_timeout=None,
        ) as service:
            await service.detect(_client_series(10**6), seed=0, **config)  # spawn the pool
            best = 0.0
            for round_index in range(rounds):
                salt = 0 if repeat_requests else 1000 * (round_index + 1)
                series = [_client_series(salt + i) for i in range(clients)]
                started = _time.perf_counter()
                await asyncio.gather(
                    *(
                        service.detect(series[i], k=3, seed=salt + i, **config)
                        for i in range(clients)
                    )
                )
                elapsed = _time.perf_counter() - started
                best = max(best, clients / elapsed)
            return best, service.stats()["batcher"]

    return asyncio.run(_run())


@register("service_throughput")
def _service_throughput(*, clients: int, workers: int = 1, rounds: int = 2):
    rps, stats = service_best_rps(clients=clients, workers=workers, rounds=rounds)
    assert stats["mean_batch_size"] > 1.0, "micro-batching did not coalesce"
    return {"req_per_s": rps}


def run_cell_once(name: str, params: dict) -> dict:
    """Run one repeat of a registered workload; the runner core's hook."""
    if name not in REGISTRY:
        raise KeyError(
            f"no registered workload {name!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[name](**params)
