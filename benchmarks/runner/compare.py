"""Noise-aware regression gate: fresh records vs committed baselines.

A baseline is one JSON file per metric under ``benchmarks/baselines/``,
written by ``repro bench --update-baselines`` and reviewed like any other
code change. The gate's contract:

- **flag only statistically significant regressions**: the current median
  must exceed the baseline by the per-metric relative ``tolerance`` *plus*
  a noise margin of ``NOISE_FACTOR x`` the larger of the two IQRs. A 3x
  slowdown of a hot path fails; within-noise jitter never does.
- **honor machine provenance**: absolute wall clock does not transfer
  between CPUs, so when the current CPU model differs from the baseline's
  the tolerance is multiplied by the matrix's ``cross_machine_slack``
  (and the mismatch is printed) — wide enough for a runner-vs-laptop
  gap, still narrow enough to catch a multiple-x regression.
- **honor ``REPRO_BENCH_STRICT``** (via :func:`benchlib.strict`): the
  caller reports always, and turns flagged regressions into a nonzero
  exit only when strict.

Improvements beyond the same band are reported too — that is the cue to
re-run ``--update-baselines`` and commit the new trajectory point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from runner.schema import SCHEMA_VERSION, BenchRecord

#: The noise band is this many IQRs wide (3 x IQR ~ comfortably outside
#: the quartiles of either run's sample distribution).
NOISE_FACTOR = 3.0


def baseline_path(directory: str | Path, metric: str) -> Path:
    """Where one metric's baseline lives (metric ids are filename-safe)."""
    return Path(directory) / f"{metric}.json"


def baseline_from_record(record: BenchRecord) -> dict:
    """The committed shape: the record minus raw samples."""
    payload = record.as_json()
    del payload["samples"]
    return payload


def write_baselines(directory: str | Path, records: list[BenchRecord]) -> list[Path]:
    """Write/overwrite one baseline file per record; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for record in records:
        path = baseline_path(directory, record.metric)
        path.write_text(json.dumps(baseline_from_record(record), indent=1, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def load_baselines(directory: str | Path) -> dict[str, dict]:
    """Load every ``*.json`` baseline in a directory, keyed by metric id."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"baseline directory not found: {directory}")
    baselines: dict[str, dict] = {}
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        version = payload.get("schema", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"{path}: baseline schema v{version} not supported")
        metric = payload.get("metric")
        if not metric:
            raise ValueError(f"{path}: baseline has no metric id")
        if f"{metric}.json" != path.name:
            raise ValueError(f"{path}: file name does not match metric id {metric!r}")
        baselines[metric] = payload
    return baselines


@dataclass(frozen=True)
class Comparison:
    """One metric's verdict against its baseline."""

    metric: str
    unit: str
    direction: str
    baseline_value: float
    current_value: float
    threshold: float
    regressed: bool
    improved: bool
    machine_match: bool

    @property
    def ratio(self) -> float:
        """current / baseline (so > 1 means slower for cost metrics)."""
        return self.current_value / self.baseline_value if self.baseline_value else float("inf")

    def describe(self) -> str:
        """One human line: verdict, values, and the threshold that decided it."""
        verdict = "REGRESSED" if self.regressed else ("improved" if self.improved else "ok")
        marker = "" if self.machine_match else " [cross-machine]"
        return (
            f"{verdict:>9}  {self.metric}: {self.current_value:.4g} {self.unit} "
            f"vs baseline {self.baseline_value:.4g} ({self.ratio:.2f}x, "
            f"{'fails' if self.regressed else 'gate'} at "
            f"{self.threshold:.4g}){marker}"
        )


def compare_record(
    record: BenchRecord, baseline: dict, *, cross_machine_slack: float = 1.0
) -> Comparison:
    """Gate one record against its baseline (see the module docstring)."""
    base_value = float(baseline["value"])
    machine_match = (
        record.machine.get("cpu_model") == baseline.get("machine", {}).get("cpu_model")
    )
    tolerance = float(baseline.get("tolerance", record.tolerance))
    if not machine_match:
        tolerance *= max(cross_machine_slack, 1.0)
    margin = NOISE_FACTOR * max(float(baseline.get("iqr", 0.0)), record.iqr)
    direction = baseline.get("direction", record.direction)
    if direction == "lower":
        threshold = base_value * (1.0 + tolerance) + margin
        regressed = record.value > threshold
        improved = record.value < base_value / (1.0 + tolerance) - margin
    else:
        threshold = base_value / (1.0 + tolerance) - margin
        regressed = record.value < threshold
        improved = record.value > base_value * (1.0 + tolerance) + margin
    return Comparison(
        metric=record.metric,
        unit=record.unit,
        direction=direction,
        baseline_value=base_value,
        current_value=record.value,
        threshold=threshold,
        regressed=regressed,
        improved=improved,
        machine_match=machine_match,
    )


def compare_records(
    records: list[BenchRecord],
    baselines: dict[str, dict],
    *,
    cross_machine_slack: float = 1.0,
) -> tuple[list[Comparison], list[str]]:
    """Compare every record that has a baseline.

    Returns ``(comparisons, untracked)`` where ``untracked`` lists metric
    ids measured this run but absent from the baseline directory — new
    metrics are surfaced, never silently ungated.
    """
    comparisons = []
    untracked = []
    for record in records:
        if record.metric in baselines:
            comparisons.append(
                compare_record(
                    record, baselines[record.metric], cross_machine_slack=cross_machine_slack
                )
            )
        else:
            untracked.append(record.metric)
    return comparisons, untracked


def comparison_report(
    comparisons: list[Comparison], untracked: list[str], *, strict: bool
) -> tuple[str, int]:
    """Format the verdict block and decide the exit code.

    Exit code is 1 iff any comparison regressed *and* ``strict`` — the
    ``REPRO_BENCH_STRICT=0`` convention reports the same lines but exits 0
    (what a noisy shared runner opts into).
    """
    lines = [comparison.describe() for comparison in comparisons]
    for metric in untracked:
        lines.append(
            f"{'no-base':>9}  {metric}: measured but has no committed baseline "
            f"(repro bench --update-baselines to start tracking)"
        )
    regressions = [c for c in comparisons if c.regressed]
    improvements = [c for c in comparisons if c.improved]
    lines.append(
        f"compared {len(comparisons)} tracked metric(s): "
        f"{len(regressions)} regression(s), {len(improvements)} improvement(s), "
        f"{len(untracked)} untracked"
    )
    if improvements:
        lines.append(
            "improvement(s) beyond tolerance — refresh the trajectory with "
            "`repro bench --update-baselines` and commit the new baselines"
        )
    if regressions and not strict:
        lines.append("REPRO_BENCH_STRICT=0: regressions reported, exit stays 0")
    return "\n".join(lines), (1 if regressions and strict else 0)
