"""Trend report over archived bench runs (``repro bench --history DIR``).

CI uploads ``bench_matrix.ndjson`` with every run; pointing ``--history``
at a directory of downloaded artifacts (any nesting — the scan is
recursive) turns them into one per-metric drift table: runs seen, first
and latest medians, the relative drift between them, and a sparkline of
the median across runs in ``created`` order. It reads exactly the records
:func:`runner.schema.read_ndjson` validates, so baselines and one-off
``--output`` directories work as history sources too.
"""

from __future__ import annotations

from pathlib import Path

from repro.utils.sparkline import sparkline
from runner.schema import BenchRecord, read_ndjson

#: Sparkline width for the trend column (kept short: one table cell).
TREND_WIDTH = 16


def load_history(history_dir: str | Path) -> dict[str, list[BenchRecord]]:
    """All records under ``history_dir``, grouped by metric id.

    Every ``*.ndjson`` file in the tree is parsed; each metric's records
    are sorted by ``created`` (ties broken by file order, which
    ``sorted``'s stability preserves). A directory with no parseable
    records raises — a typo'd path should not print an empty report.
    """
    history_dir = Path(history_dir)
    if not history_dir.is_dir():
        raise ValueError(f"--history: {history_dir} is not a directory")
    by_metric: dict[str, list[BenchRecord]] = {}
    files = sorted(history_dir.rglob("*.ndjson"))
    for path in files:
        for record in read_ndjson(path):
            by_metric.setdefault(record.metric, []).append(record)
    if not by_metric:
        raise ValueError(f"--history: no bench records in *.ndjson under {history_dir}")
    for records in by_metric.values():
        records.sort(key=lambda record: record.created)
    return by_metric


def _drift(first: float, last: float) -> str:
    if first == 0:
        return "n/a"
    return f"{(last - first) / first * 100.0:+.1f}%"


def history_rows(by_metric: dict[str, list[BenchRecord]]) -> list[list[str]]:
    """One table row per metric: runs, first/last medians, drift, trend."""
    rows = []
    for metric in sorted(by_metric):
        records = by_metric[metric]
        values = [record.value for record in records]
        trend = sparkline(values, width=min(TREND_WIDTH, len(values)))
        rows.append(
            [
                metric,
                records[-1].unit,
                str(len(records)),
                f"{values[0]:.4g}",
                f"{values[-1]:.4g}",
                _drift(values[0], values[-1]),
                trend,
            ]
        )
    return rows


def history_report(history_dir: str | Path) -> str:
    """The rendered trend table for ``repro bench --history DIR``."""
    from repro.evaluation.tables import format_table

    by_metric = load_history(history_dir)
    runs = max(len(records) for records in by_metric.values())
    return format_table(
        ["metric", "unit", "runs", "first", "latest", "drift", "trend"],
        history_rows(by_metric),
        title=f"bench history: {len(by_metric)} metric(s), up to {runs} run(s) each",
    )
