"""Declarative bench matrix: load ``bench_matrix.toml``, expand cells.

The spec file declares *what to measure*, the runner decides *how*:

.. code-block:: toml

    [defaults]
    warmup = 1
    repeats = 3
    tolerance = 0.75            # relative regression tolerance
    cross_machine_slack = 1.0   # extra tolerance multiplier off-baseline-machine

    [workloads.grammar_tokens]
    tier = 1                    # 1 = CI subset, 2 = heavy/local
    description = "..."
    [workloads.grammar_tokens.params]      # fixed parameters
    tokens = 20000
    [workloads.grammar_tokens.axes]        # swept parameters (product)
    kernel = ["fast", "python"]
    [workloads.grammar_tokens.units]       # metric name -> unit
    us_per_token = "us/token"
    [workloads.grammar_tokens.tolerances]  # optional per-metric override
    us_per_token = 0.75

A workload's cells are the cartesian product of its axes; each cell's
metric ids are ``workload.axis=value....metric`` (e.g.
``grammar_tokens.kernel=fast.us_per_token``) — globally unique, stable
under axis reordering (axes are sorted), and filename-safe for the
per-metric baseline files.

Parsing uses :mod:`tomllib` on Python 3.11+; on 3.10 a minimal fallback
parser covers the subset this file uses (dotted table headers, scalar and
array values) so ``repro bench --list`` works on every CI python.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path

#: Metrics where larger is better (throughput); everything else is a cost.
_HIGHER_KEY = "higher_is_better"


# ----------------------------------------------------------------------
# TOML loading (tomllib, with a 3.10-compatible subset fallback).
# ----------------------------------------------------------------------


def _parse_scalar(text: str):
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"unsupported TOML value: {text!r}") from None


def _parse_value(text: str):
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in inner.split(",") if part.strip()]
    return _parse_scalar(text)


def _fallback_parse(text: str) -> dict:
    """Parse the TOML subset ``bench_matrix.toml`` uses (Python 3.10 path).

    Supported: ``[dotted.table.headers]``, ``key = scalar`` and
    ``key = [array]`` on one line, ``#`` comments, bare/quoted keys.
    Unsupported syntax raises rather than being silently misread.
    """
    root: dict = {}
    table = root
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].split("."):
                key = part.strip().strip('"')
                if not key:
                    raise ValueError(f"line {line_number}: empty table-name segment")
                table = table.setdefault(key, {})
                if not isinstance(table, dict):
                    raise ValueError(f"line {line_number}: {key!r} is not a table")
            continue
        if "=" not in line:
            raise ValueError(f"line {line_number}: expected 'key = value': {raw!r}")
        key, _, value = line.partition("=")
        comment = value.find("#")
        if comment != -1 and '"' not in value[:comment]:
            value = value[:comment]
        table[key.strip().strip('"')] = _parse_value(value)
    return root


def load_toml(path: str | Path) -> dict:
    """Load a TOML file (stdlib tomllib when available, else the fallback)."""
    path = Path(path)
    try:
        import tomllib
    except ModuleNotFoundError:
        return _fallback_parse(path.read_text())
    with open(path, "rb") as handle:
        return tomllib.load(handle)


# ----------------------------------------------------------------------
# The matrix model.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One ``[workloads.*]`` entry: fixed params, swept axes, metric specs."""

    name: str
    tier: int
    description: str
    params: dict = field(default_factory=dict)
    axes: dict = field(default_factory=dict)
    units: dict = field(default_factory=dict)
    tolerances: dict = field(default_factory=dict)
    higher_is_better: tuple[str, ...] = ()
    warmup: int = 1
    repeats: int = 3

    def direction(self, metric_name: str) -> str:
        """Gate direction of one metric (``lower`` unless declared higher)."""
        return "higher" if metric_name in self.higher_is_better else "lower"


@dataclass(frozen=True)
class MatrixCell:
    """One workload x one axis combination — the unit the runner executes."""

    workload: WorkloadSpec
    axis_values: dict = field(default_factory=dict)

    @property
    def params(self) -> dict:
        """Fixed params merged with this cell's axis values."""
        return {**self.workload.params, **self.axis_values}

    @property
    def cell_id(self) -> str:
        """Stable id: workload name + sorted ``axis=value`` segments."""
        suffix = "".join(
            f".{key}={self.axis_values[key]}" for key in sorted(self.axis_values)
        )
        return f"{self.workload.name}{suffix}"

    def metric_id(self, metric_name: str) -> str:
        """The globally unique, filename-safe id baselines are keyed by."""
        return f"{self.cell_id}.{metric_name}"


@dataclass(frozen=True)
class Matrix:
    """The loaded spec: workloads plus run-wide defaults."""

    workloads: tuple[WorkloadSpec, ...]
    defaults: dict = field(default_factory=dict)

    @property
    def cross_machine_slack(self) -> float:
        """Extra tolerance multiplier applied off the baseline machine."""
        return float(self.defaults.get("cross_machine_slack", 1.0))

    def cells(
        self, *, tier: int | None = None, pattern: str | None = None
    ) -> list[MatrixCell]:
        """Expand the matrix, optionally restricted by tier and substring.

        ``pattern`` matches against the cell id (so ``kernel=python`` or a
        workload name both work). Cells come out in spec order, axes in
        sorted-key order — deterministic for NDJSON diffing.
        """
        cells = []
        for workload in self.workloads:
            if tier is not None and workload.tier != tier:
                continue
            axis_names = sorted(workload.axes)
            combos = itertools.product(*(workload.axes[name] for name in axis_names))
            for combo in combos:
                cell = MatrixCell(workload, dict(zip(axis_names, combo)))
                if pattern is None or pattern in cell.cell_id:
                    cells.append(cell)
        return cells


def _workload_from_table(name: str, table: dict, defaults: dict) -> WorkloadSpec:
    known = {
        "tier",
        "description",
        "params",
        "axes",
        "units",
        "tolerances",
        _HIGHER_KEY,
        "warmup",
        "repeats",
    }
    unknown = set(table) - known
    if unknown:
        raise ValueError(f"workload {name!r}: unknown keys {sorted(unknown)}")
    units = dict(table.get("units", {}))
    if not units:
        raise ValueError(f"workload {name!r}: declares no metrics ([workloads.{name}.units])")
    tolerances = dict(table.get("tolerances", {}))
    stray = set(tolerances) - set(units)
    if stray:
        raise ValueError(f"workload {name!r}: tolerances for unknown metrics {sorted(stray)}")
    default_tolerance = float(defaults.get("tolerance", 0.75))
    return WorkloadSpec(
        name=name,
        tier=int(table.get("tier", 2)),
        description=str(table.get("description", "")),
        params=dict(table.get("params", {})),
        axes={key: list(values) for key, values in table.get("axes", {}).items()},
        units=units,
        tolerances={m: float(tolerances.get(m, default_tolerance)) for m in units},
        higher_is_better=tuple(table.get(_HIGHER_KEY, [])),
        warmup=int(table.get("warmup", defaults.get("warmup", 1))),
        repeats=int(table.get("repeats", defaults.get("repeats", 3))),
    )


def load_matrix(path: str | Path) -> Matrix:
    """Load and validate the matrix spec."""
    document = load_toml(path)
    unknown = set(document) - {"defaults", "workloads"}
    if unknown:
        raise ValueError(f"{path}: unknown top-level tables {sorted(unknown)}")
    defaults = dict(document.get("defaults", {}))
    tables = document.get("workloads", {})
    if not tables:
        raise ValueError(f"{path}: no [workloads.*] tables")
    workloads = tuple(
        _workload_from_table(name, table, defaults) for name, table in tables.items()
    )
    return Matrix(workloads=workloads, defaults=defaults)
