"""The one normalized bench record shape (NDJSON + summary JSON).

Before the runner, every bench emitted its own ad-hoc
``json.dumps(payload)`` under ``benchmarks/results/BENCH_*.json`` — no two
shapes alike, none carrying provenance. This module defines the single
record schema everything now flows through:

- **NDJSON** (``bench_matrix.ndjson``): one :class:`BenchRecord` per line,
  one line per metric per matrix cell, in measurement order. This is the
  artifact CI uploads — append-friendly, greppable, machine-joinable.
- **Summary JSON** (``bench_matrix_summary.json``): the same records keyed
  by metric id with raw samples dropped — what humans and the comparison
  gate read.
- **Legacy payload envelope** (:func:`write_bench_payload`): the
  ``bench_*.py`` scripts keep their narrative payloads, but wrapped in one
  envelope carrying the schema version, machine fingerprint, and git SHA
  instead of each inventing a shape.

Every record carries the machine fingerprint (CPU model, core count,
python/numpy versions, resolved ``REPRO_KERNEL``, git SHA) from
:mod:`runner.machine` — a number without provenance is not a baseline.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.timing import Measurement

#: Bumped on any incompatible record-shape change; readers reject unknown
#: versions instead of misinterpreting fields.
SCHEMA_VERSION = 1

#: Gate directions: "lower" = cost metric (regression is an increase),
#: "higher" = throughput metric (regression is a decrease).
DIRECTIONS = ("lower", "higher")


def utc_now() -> str:
    """ISO-8601 UTC timestamp for record provenance."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


@dataclass(frozen=True)
class BenchRecord:
    """One measured metric of one matrix cell — one NDJSON line.

    ``metric`` is the globally unique id (``workload.axis=value....name``)
    the baselines are keyed by; ``value`` is the median over ``repeats``
    recorded runs and ``iqr`` the interquartile range the regression gate
    treats as the noise band. ``params`` holds the full cell parameters
    (fixed params and axis values merged), ``machine`` the fingerprint
    dict from :func:`runner.machine.machine_fingerprint`.
    """

    metric: str
    workload: str
    unit: str
    value: float
    iqr: float
    best: float
    mean: float
    repeats: int
    warmup: int
    direction: str = "lower"
    tolerance: float = 0.75
    samples: tuple[float, ...] = ()
    params: dict = field(default_factory=dict)
    machine: dict = field(default_factory=dict)
    created: str = ""
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )

    def as_json(self) -> dict:
        """The record as a JSON-ready dict (tuples become lists)."""
        payload = dataclasses.asdict(self)
        payload["samples"] = list(self.samples)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "BenchRecord":
        """Inverse of :meth:`as_json`; rejects unknown schema versions."""
        version = payload.get("schema", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"record schema v{version} is not supported (expected v{SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        payload = dict(payload)
        payload["samples"] = tuple(payload.get("samples", ()))
        return cls(**payload)


def record_from_measurement(
    *,
    metric: str,
    workload: str,
    unit: str,
    measurement: Measurement,
    warmup: int,
    params: dict,
    machine: dict,
    direction: str = "lower",
    tolerance: float = 0.75,
) -> BenchRecord:
    """Fold a :class:`repro.utils.timing.Measurement` into one record."""
    return BenchRecord(
        metric=metric,
        workload=workload,
        unit=unit,
        value=measurement.median,
        iqr=measurement.iqr,
        best=measurement.best,
        mean=measurement.mean,
        repeats=len(measurement.samples),
        warmup=warmup,
        direction=direction,
        tolerance=tolerance,
        samples=tuple(measurement.samples),
        params=dict(params),
        machine=dict(machine),
        created=utc_now(),
    )


def write_ndjson(path: str | Path, records: list[BenchRecord]) -> Path:
    """Write records as NDJSON (one compact JSON object per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(record.as_json(), sort_keys=True) for record in records]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def read_ndjson(path: str | Path) -> list[BenchRecord]:
    """Read an NDJSON record stream back (blank lines tolerated)."""
    records = []
    for line_number, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(BenchRecord.from_json(json.loads(line)))
        except (json.JSONDecodeError, TypeError, ValueError) as error:
            raise ValueError(f"{path}:{line_number}: bad bench record: {error}") from None
    return records


def summarize(records: list[BenchRecord]) -> dict:
    """The summary document: records keyed by metric id, samples dropped.

    One machine fingerprint for the whole document (all records of one run
    share it; mixing runs from different machines into one summary is a
    caller error and raises).
    """
    machines = {json.dumps(r.machine, sort_keys=True) for r in records}
    if len(machines) > 1:
        raise ValueError("refusing to summarize records from different machines")
    metrics = {}
    for record in records:
        if record.metric in metrics:
            raise ValueError(f"duplicate metric id in record stream: {record.metric}")
        entry = record.as_json()
        del entry["samples"]
        del entry["machine"]
        metrics[record.metric] = entry
    return {
        "schema": SCHEMA_VERSION,
        "created": utc_now(),
        "machine": dict(records[0].machine) if records else {},
        "metrics": metrics,
    }


def write_summary(path: str | Path, records: list[BenchRecord]) -> Path:
    """Write the summary JSON next to the NDJSON artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summarize(records), indent=1, sort_keys=True) + "\n")
    return path


def write_bench_payload(name: str, payload: dict, results_dir: str | Path) -> Path:
    """Write a narrative bench's payload in the one normalized envelope.

    Replaces the per-bench ad-hoc ``json.dumps(payload)`` shapes: the
    measured dict goes under ``data``, and the envelope adds the schema
    version, machine fingerprint, git SHA, and timestamp — so even the
    non-matrix artifacts (``BENCH_*.json``) carry provenance.
    """
    from runner.machine import machine_fingerprint

    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    envelope = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "created": utc_now(),
        "machine": machine_fingerprint(),
        "data": payload,
    }
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(envelope, indent=1) + "\n")
    return path
