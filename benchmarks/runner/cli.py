"""``repro bench`` command logic (argument plumbing lives in repro.cli).

One entry point, five modes:

- **run** (default): execute the selected matrix cells (tier 1 unless
  ``--tier`` says otherwise), write ``bench_matrix.ndjson`` plus
  ``bench_matrix_summary.json`` under ``--output``.
- **--list**: print the selected cells and their metrics, run nothing.
- **--history DIR**: print a per-metric trend table from the archived
  NDJSON artifacts under DIR (see :mod:`runner.history`), run nothing.
- **--compare DIR**: run, then gate against the per-metric baselines in
  DIR; exit 1 on a statistically significant regression (unless
  ``REPRO_BENCH_STRICT=0`` — see :mod:`runner.compare`).
- **--update-baselines**: run, then (over)write the committed baselines —
  the reviewed artifact every future run is gated against.

``--ci`` is the CI job's spelling: tier-1 cells, compare against the
committed ``benchmarks/baselines/``, artifacts under
``benchmarks/results/`` for upload.
"""

from __future__ import annotations

import sys
from pathlib import Path

from benchlib import strict
from repro.utils.timing import collect
from runner.compare import compare_records, comparison_report, load_baselines, write_baselines
from runner.machine import machine_fingerprint
from runner.matrix import Matrix, MatrixCell, load_matrix
from runner.schema import BenchRecord, record_from_measurement, write_ndjson, write_summary
from runner.workloads import run_cell_once

#: Artifact names under ``--output`` (what CI uploads).
NDJSON_NAME = "bench_matrix.ndjson"
SUMMARY_NAME = "bench_matrix_summary.json"


def _parse_tier(value: str) -> int | None:
    if value == "all":
        return None
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"--tier must be an integer or 'all', got {value!r}") from None


def _select_cells(matrix: Matrix, args) -> list[MatrixCell]:
    tier = _parse_tier("1" if args.ci else args.tier)
    cells = matrix.cells(tier=tier, pattern=args.filter)
    if not cells:
        raise ValueError(
            f"no matrix cells match tier={args.tier!r} filter={args.filter!r}"
        )
    return cells


def _list_cells(cells: list[MatrixCell]) -> int:
    from repro.evaluation.tables import format_table

    rows = [
        [
            cell.cell_id,
            str(cell.workload.tier),
            f"{cell.workload.warmup}+{cell.workload.repeats}",
            ", ".join(f"{m} [{u}]" for m, u in sorted(cell.workload.units.items())),
        ]
        for cell in cells
    ]
    print(
        format_table(
            ["cell", "tier", "warmup+repeats", "metrics"],
            rows,
            title=f"bench matrix: {len(cells)} cell(s) selected",
        )
    )
    return 0


def run_cells(cells: list[MatrixCell], *, warmup: int | None, repeats: int | None) -> list[BenchRecord]:
    """Execute cells under the warmup+repeats protocol; one record per metric.

    Progress goes to stderr as each cell lands, so a long matrix run is
    watchable; the machine fingerprint is computed once up front (it is
    process-cached — every record of the run carries identical provenance).
    """
    machine = machine_fingerprint()
    records: list[BenchRecord] = []
    for index, cell in enumerate(cells, start=1):
        spec = cell.workload
        cell_warmup = spec.warmup if warmup is None else warmup
        cell_repeats = spec.repeats if repeats is None else repeats
        params = cell.params
        measurements = collect(
            lambda name=spec.name, p=params: run_cell_once(name, p),
            warmup=cell_warmup,
            repeats=cell_repeats,
        )
        measured = set(measurements)
        declared = set(spec.units)
        if measured != declared:
            raise ValueError(
                f"{cell.cell_id}: workload returned metrics {sorted(measured)} "
                f"but the matrix declares {sorted(declared)}"
            )
        for metric_name in sorted(measurements):
            measurement = measurements[metric_name]
            records.append(
                record_from_measurement(
                    metric=cell.metric_id(metric_name),
                    workload=spec.name,
                    unit=spec.units[metric_name],
                    measurement=measurement,
                    warmup=cell_warmup,
                    params=params,
                    machine=machine,
                    direction=spec.direction(metric_name),
                    tolerance=spec.tolerances[metric_name],
                )
            )
            print(
                f"[{index}/{len(cells)}] {cell.metric_id(metric_name)}: "
                f"{measurement.median:.4g} {spec.units[metric_name]} "
                f"(iqr {measurement.iqr:.2g}, {cell_repeats} repeats)",
                file=sys.stderr,
            )
    return records


def run_bench(args, bench_dir: Path) -> int:
    """The ``repro bench`` handler body; returns the process exit code."""
    if getattr(args, "history", None):
        from runner.history import history_report

        print(history_report(args.history))
        return 0
    matrix_path = Path(args.matrix) if args.matrix else bench_dir / "bench_matrix.toml"
    matrix = load_matrix(matrix_path)
    cells = _select_cells(matrix, args)
    if args.list:
        return _list_cells(cells)

    records = run_cells(cells, warmup=args.warmup, repeats=args.repeats)

    output_dir = Path(args.output) if args.output else bench_dir / "results"
    ndjson_path = write_ndjson(output_dir / NDJSON_NAME, records)
    summary_path = write_summary(output_dir / SUMMARY_NAME, records)
    print(f"wrote {ndjson_path}\nwrote {summary_path}")

    if args.update_baselines:
        baselines_dir = bench_dir / "baselines"
        paths = write_baselines(baselines_dir, records)
        print(f"wrote {len(paths)} baseline file(s) under {baselines_dir}")
        return 0

    compare_dir = args.compare
    if args.ci and not compare_dir:
        compare_dir = bench_dir / "baselines"
    if compare_dir:
        baselines = load_baselines(compare_dir)
        comparisons, untracked = compare_records(
            records, baselines, cross_machine_slack=matrix.cross_machine_slack
        )
        report, exit_code = comparison_report(comparisons, untracked, strict=strict())
        print(report)
        return exit_code
    return 0
