"""Section 7.5 — detecting multiple anomalies.

The paper plants two StarLightCurve anomalies (length 1024) into 43,008-
point series and counts how many of the ten series have both anomalies
overlapped by the top-3 candidates. This bench reproduces the protocol
(series count reduced by default) and prints the per-series detection
counts.

Shape check: the ensemble detects both anomalies in most series and at
least one anomaly in every series (paper: 9/10 both, 10/10 at least one).
"""

from __future__ import annotations

from benchlib import FULL, scale_note
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.planting import make_multi_anomaly_case
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.tables import format_table

N_SERIES = 10 if FULL else 4
WINDOW = 1024


def bench_sec75_multiple_anomalies(benchmark, report):
    def run():
        outcomes = []
        for index in range(N_SERIES):
            case = make_multi_anomaly_case(
                DATASETS["StarLightCurve"], seed=100 + index, n_normal=40, n_anomalies=2
            )
            detector = EnsembleGrammarDetector(WINDOW, seed=index)
            candidates = detector.detect(case.series, k=3)
            detected = 0
            for location in case.gt_locations:
                if any(
                    candidate.position < location + case.gt_length
                    and location < candidate.position + candidate.length
                    for candidate in candidates
                ):
                    detected += 1
            outcomes.append((case, detected))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            f"series {i}",
            str(len(case.series)),
            ", ".join(str(p) for p in case.gt_locations),
            f"{detected}/2",
        ]
        for i, (case, detected) in enumerate(outcomes)
    ]
    both = sum(1 for _, detected in outcomes if detected == 2)
    at_least_one = sum(1 for _, detected in outcomes if detected >= 1)
    table = format_table(
        ["Series", "Length", "GT locations", "Detected"],
        rows,
        title="Section 7.5: multiple planted anomalies (StarLightCurve)",
    )
    summary = (
        f"both detected: {both}/{N_SERIES}; at least one: {at_least_one}/{N_SERIES} "
        f"(paper: 9/10 both, 10/10 at least one)"
    )
    report(table + "\n" + summary + "\n" + scale_note(), "sec75.txt")

    assert at_least_one == N_SERIES
    assert both >= N_SERIES - 1
