"""Extension bench — RRA (variable-length) vs the paper's methods.

RRA [18, 19] is the GrammarViz algorithm the paper's rule-density method
streamlines; this bench places it alongside the ensemble and the discord
baseline on two datasets, reporting average Score and HitRate. Not a paper
table — it documents how the lineage's variable-length detector fares under
the same protocol.
"""

from __future__ import annotations

from benchlib import SWEEP_CASES, corpus_for, scale_note
from repro.core.ensemble import EnsembleGrammarDetector
from repro.discord.discords import DiscordDetector
from repro.evaluation.harness import evaluate_methods_on_corpus
from repro.evaluation.tables import format_float, format_table
from repro.grammar.rra import RRADetector

RRA_DATASETS = ["TwoLeadECG", "Trace"]


def bench_extension_rra(benchmark, report):
    def run():
        results = {}
        for dataset in RRA_DATASETS:
            corpus = corpus_for(dataset, SWEEP_CASES)
            factories = {
                "Ensemble": lambda window: EnsembleGrammarDetector(window, seed=0),
                "RRA": lambda window: RRADetector(window, paa_size=5, alphabet_size=5),
                "Discord": lambda window: DiscordDetector(window),
            }
            results[dataset] = evaluate_methods_on_corpus(corpus, factories)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for dataset in RRA_DATASETS:
        for method, scores in results[dataset].items():
            rows.append(
                [
                    dataset,
                    method,
                    format_float(scores.average),
                    format_float(scores.hit_rate, 2),
                ]
            )
    table = format_table(
        ["Dataset", "Method", "avg Score", "HitRate"],
        rows,
        title="Extension: RRA (variable-length) vs ensemble vs Discord",
    )
    report(table + "\n" + scale_note(), "extension_rra.txt")

    # RRA is a plausible detector: it hits on a meaningful share of cases.
    for dataset in RRA_DATASETS:
        assert results[dataset]["RRA"].hit_rate >= 0.25, dataset
