"""Table 3 — properties of the evaluation datasets.

Regenerates the dataset-property table from the synthetic dataset registry
and the planting harness: time-series length (21 concatenated instances),
segment (instance) length, and data type, alongside the paper's values.
"""

from __future__ import annotations

from benchlib import DATASET_ORDER, corpus_for, scale_note
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.tables import format_table

#: Paper Table 3: (series length, segment length) — series lengths follow
#: the paper's text; 21 * segment differs slightly for TwoLeadECG (1772 vs
#: 1722), which is a rounding artifact in the paper.
PAPER = {
    "TwoLeadECG": (1772, 82, "ECG"),
    "ECGFiveDay": (2772, 132, "ECG"),
    "GunPoint": (3150, 150, "Motion"),
    "Wafer": (3150, 150, "Sensor"),
    "Trace": (5775, 275, "Sensor"),
    "StarLightCurve": (21504, 1024, "Sensor"),
}


def bench_table03_dataset_properties(benchmark, report):
    def build() -> list[list[str]]:
        rows = []
        for name in DATASET_ORDER:
            dataset = DATASETS[name]
            case = corpus_for(name, 1)[0]
            paper_length, paper_segment, paper_type = PAPER[name]
            rows.append(
                [
                    name,
                    str(len(case.series)),
                    str(paper_length),
                    str(dataset.spec.instance_length),
                    str(paper_segment),
                    dataset.spec.data_type,
                    paper_type,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        [
            "Dataset",
            "SeriesLen",
            "SeriesLen(paper)",
            "SegmentLen",
            "SegmentLen(paper)",
            "Type",
            "Type(paper)",
        ],
        rows,
        title="Table 3: Properties of datasets used for experimental evaluation",
    )
    report(table + "\n" + scale_note(), "table03.txt")
    # The reproduction must match the paper's segment lengths and types.
    for row in rows:
        assert row[3] == row[4], f"{row[0]}: segment length mismatch"
        assert row[5] == row[6], f"{row[0]}: data type mismatch"
