"""Failover bench: what a node crash costs the stream behind the router.

The sharded serving story (PR 8) promises that SIGKILL-ing a serve node
mid-stream is *semantically invisible*: the router re-places the session on
a survivor, restores the latest checkpoint from the shared snapshot
directory, replays its buffered tail, and every subsequent detection is
bitwise identical to a session that never saw the crash. This bench
measures what that invisibility costs:

1. **steady state** — per-chunk append latency through the router while
   both nodes are healthy (the proxy overhead baseline);
2. **the crash** — the owning node is SIGKILLed between chunks; the next
   append eats the whole recovery (dead-node detection, snapshot restore
   on the survivor, tail replay) and its latency is the *recovery cost*;
3. **parity** — a witness session fed the identical stream without any
   crash must produce identical detections (asserted unconditionally —
   a fast failover that changes results is worthless).

Results land in ``results/BENCH_service_failover.json``. The wall-clock
gate (recovery under ``REPRO_FAILOVER_BUDGET_S``, default 10 s) is
asserted only when ``REPRO_BENCH_STRICT`` is on, per the shared-runner
convention; the parity and single-recovery assertions always gate.
"""

from __future__ import annotations

import json
import os
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

from benchlib import RESULTS_DIR, strict
from repro.evaluation.tables import format_table
from runner.schema import write_bench_payload

#: Per-session detector configuration: small on purpose — the bench times
#: routing and recovery machinery, not detection throughput.
CONFIG = {"window": 40, "ensemble_size": 4, "max_paa_size": 5, "max_alphabet_size": 5}
POINTS = int(os.environ.get("REPRO_FAILOVER_POINTS", "1200"))
CHUNK = 150
SNAPSHOT_EVERY = 200
#: Strict-mode ceiling on the recovery append (restore + replay), seconds.
RECOVERY_BUDGET_S = float(os.environ.get("REPRO_FAILOVER_BUDGET_S", "10"))

SERVE_BANNER = re.compile(r"serving on http://127\.0\.0\.1:(\d+)")
ROUTER_BANNER = re.compile(r"routing on http://127\.0\.0\.1:(\d+)")


def _spawn(args: list[str], banner: re.Pattern) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError(f"{args[0]} exited before binding")
        match = banner.search(line or "")
        if match:
            return process, int(match.group(1))
    process.kill()
    raise RuntimeError(f"{args[0]} did not start")


def _call(port: int, method: str, path: str, payload=None) -> dict:
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def make_feed(seed: int = 11, n: int = POINTS) -> list[float]:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, n / 55.0 * np.pi, n)
    series = np.sin(t) + 0.05 * rng.standard_normal(n)
    series[n // 2 : n // 2 + 60] *= 0.2
    return [float(v) for v in series]


def bench_service_failover(report):
    """SIGKILL the owning node mid-stream; time the recovery append."""
    feed = make_feed()
    chunks = [feed[i : i + CHUNK] for i in range(0, len(feed), CHUNK)]
    kill_at = len(chunks) // 2
    processes: list[subprocess.Popen] = []
    with tempfile.TemporaryDirectory(prefix="repro-failover-") as snapshots:
        try:
            nodes = []
            by_addr = {}
            for node_id in ("n1", "n2"):
                process, port = _spawn(
                    [
                        "serve", "--port", "0",
                        "--snapshot-dir", snapshots,
                        "--snapshot-every", str(SNAPSHOT_EVERY),
                        "--node-id", node_id,
                    ],
                    SERVE_BANNER,
                )
                processes.append(process)
                nodes.append(f"127.0.0.1:{port}")
                by_addr[nodes[-1]] = process
            router, port = _spawn(
                ["router", "--port", "0", "--nodes", ",".join(nodes)], ROUTER_BANNER
            )
            processes.append(router)

            _call(port, "POST", "/v1/sessions", {"name": "bench.feed", "seed": 11, **CONFIG})
            steady, recovery_latency = [], None
            for index, chunk in enumerate(chunks):
                if index == kill_at:
                    victim = by_addr[_call(port, "GET", "/v1/stats")["placements"]["bench.feed"]]
                    victim.send_signal(signal.SIGKILL)
                    victim.wait(timeout=30)
                started = time.perf_counter()
                _call(port, "POST", "/v1/sessions/bench.feed/append", {"values": chunk})
                elapsed = time.perf_counter() - started
                if index == kill_at:
                    recovery_latency = elapsed
                else:
                    steady.append(elapsed)
            resumed = _call(port, "GET", "/v1/sessions/bench.feed/anomalies?k=5")

            _call(port, "POST", "/v1/sessions", {"name": "witness.feed", "seed": 11, **CONFIG})
            _call(port, "POST", "/v1/sessions/witness.feed/append", {"values": feed})
            uninterrupted = _call(port, "GET", "/v1/sessions/witness.feed/anomalies?k=5")
            stats = _call(port, "GET", "/v1/stats")
        finally:
            for process in processes:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            for process in processes:
                try:
                    process.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    process.kill()

    parity = resumed["anomalies"] == uninterrupted["anomalies"]
    steady_median = statistics.median(steady)
    overhead = recovery_latency / steady_median

    rows = [
        ["steady-state append (median)", f"{steady_median * 1000:.1f} ms", "-"],
        ["recovery append (restore+replay)", f"{recovery_latency * 1000:.1f} ms", f"{overhead:.0f}x"],
        ["bitwise parity after failover", str(parity), "-"],
    ]
    text = format_table(
        ["metric", "value", "vs steady"],
        rows,
        title=(
            f"Service failover: {POINTS}-point stream in {CHUNK}-chunks, "
            f"2 nodes, SIGKILL at chunk {kill_at}, snapshot every {SNAPSHOT_EVERY}"
        ),
    )
    report(text, "bench_service_failover.txt")

    write_bench_payload(
        "service_failover",
        {
            "points": POINTS,
            "chunk": CHUNK,
            "snapshot_every": SNAPSHOT_EVERY,
            "kill_at_chunk": kill_at,
            "steady_append_median_s": steady_median,
            "recovery_append_s": recovery_latency,
            "recovery_overhead_x": overhead,
            "recoveries": stats["recoveries"],
            "tail_points_after": stats["tail_points"],
            "bitwise_parity": parity,
            "recovery_budget_s": RECOVERY_BUDGET_S,
            "strict": strict(),
        },
        RESULTS_DIR,
    )

    # The contract gates unconditionally: exactly one recovery happened,
    # and it changed nothing about the detections.
    assert parity, "post-failover detections diverged from the uninterrupted run"
    assert stats["recoveries"] == 1, stats
    if strict():
        assert recovery_latency <= RECOVERY_BUDGET_S, (
            f"recovery took {recovery_latency:.1f}s "
            f"(budget {RECOVERY_BUDGET_S:.0f}s)"
        )
