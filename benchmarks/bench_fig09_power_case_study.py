"""Figure 9 / Section 7.4 — case study: fridge-freezer power usage.

Runs the ensemble with sliding window 900 (about one compressor cycle) over
a long simulated fridge-freezer trace containing the paper's two anomaly
archetypes — a distorted cycle and a spiky event — and reports the top-2
ranked candidates against the injected ground truth, plus the wall-clock
time (the paper reports about one minute for the 600k-point series).

Shape check: the two top-ranked anomalies each overlap one injected
anomaly, and both archetypes are found.
"""

from __future__ import annotations

from benchlib import FULL, scale_note
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.power import fridge_freezer_series
from repro.evaluation.tables import format_table
from repro.utils.timing import Timer

LENGTH = 600_000 if FULL else 120_000
WINDOW = 900


def bench_fig09_fridge_freezer(benchmark, report):
    series, truths = fridge_freezer_series(length=LENGTH, seed=0)

    detector = EnsembleGrammarDetector(WINDOW, seed=0)

    def run():
        with Timer() as timer:
            candidates = detector.detect(series, k=3)
        return candidates, timer.elapsed

    candidates, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)

    def matching_truth(candidate):
        for truth in truths:
            if (
                candidate.position < truth.position + truth.length
                and truth.position < candidate.position + candidate.length
            ):
                return truth.kind
        return "-"

    rows = [
        [
            f"top-{candidate.rank}",
            str(candidate.position),
            str(candidate.length),
            f"{candidate.score:.3f}",
            matching_truth(candidate),
        ]
        for candidate in candidates
    ]
    truth_rows = [[t.kind, str(t.position), str(t.length)] for t in truths]
    table = format_table(
        ["Candidate", "Position", "Length", "Score", "Matches injected"],
        rows,
        title=f"Figure 9: top anomalies in a {LENGTH:,}-point fridge-freezer trace",
    )
    truth_table = format_table(
        ["Injected anomaly", "Position", "Length"], truth_rows, title="Ground truth"
    )
    summary = f"detection time: {elapsed:.1f}s (paper: ~60s at 600,000 points)"
    report(table + "\n\n" + truth_table + "\n" + summary + "\n" + scale_note(), "fig09.txt")

    # Shape checks: both archetypes among the top candidates; top-2 are hits.
    matched = {matching_truth(c) for c in candidates[:2]}
    assert "-" not in matched, rows
    all_matched = {matching_truth(c) for c in candidates}
    assert {"distorted-cycle", "spiky-event"} <= all_matched, rows
