"""Table 12 — effect of the ensemble selectivity tau (5% .. 100%).

For each repeat, a fresh N=50 ensemble (new parameter sample) is computed
per test series; every tau then filters the *same* member curves, exactly
as Algorithm 1 would. The table reports mean and standard deviation of the
per-repeat average Score, as in the paper (which repeats 20 times; the
reduced default repeats fewer — set REPRO_FULL=1 or REPRO_REPEATS).

Shape check: very large tau (80–100%) is worse than small tau — keeping
every low-quality member dilutes the ensemble (Section 7.2.5).
"""

from __future__ import annotations

import numpy as np

from benchlib import (
    DATASET_ORDER,
    PAPER_TABLE12,
    REPEATS,
    SELECTIVITIES,
    member_curves_for_corpus,
    scale_note,
)
from repro.core.ensemble import combine_and_detect
from repro.evaluation.metrics import best_score
from repro.evaluation.tables import format_table


def _mean_scores() -> dict[str, dict[float, list[float]]]:
    """{dataset: {tau: [average Score per repeat]}}"""
    results: dict[str, dict[float, list[float]]] = {
        dataset: {tau: [] for tau in SELECTIVITIES} for dataset in DATASET_ORDER
    }
    for repeat in range(REPEATS):
        for dataset in DATASET_ORDER:
            per_tau: dict[float, list[float]] = {tau: [] for tau in SELECTIVITIES}
            for case, curves in member_curves_for_corpus(
                dataset, ensemble_size=50, seed=1000 + repeat
            ):
                for tau in SELECTIVITIES:
                    candidates = combine_and_detect(
                        curves, case.gt_length, k=3, selectivity=tau
                    )
                    per_tau[tau].append(
                        best_score(candidates, case.gt_location, case.gt_length)
                    )
            for tau in SELECTIVITIES:
                results[dataset][tau].append(float(np.mean(per_tau[tau])))
    return results


def bench_table12_selectivity(benchmark, report):
    results = benchmark.pedantic(_mean_scores, rounds=1, iterations=1)

    rows = []
    for dataset in DATASET_ORDER:
        cells = [dataset]
        for column, tau in enumerate(SELECTIVITIES):
            repeats = results[dataset][tau]
            paper_mean, paper_std = PAPER_TABLE12[dataset][column]
            cells.append(
                f"{np.mean(repeats):.4f}({np.std(repeats):.3f}) | "
                f"{paper_mean:.4f}({paper_std:.3f})"
            )
        rows.append(cells)
    headers = ["Dataset"] + [f"tau={int(tau * 100)}% | paper" for tau in SELECTIVITIES]
    table = format_table(
        headers,
        rows,
        title="Table 12: Mean (std) of average Score over repeats, vs tau",
    )
    report(table + "\n" + scale_note(), "table12.txt")

    # Shape check: small tau beats keeping everything, on macro average.
    def macro(tau: float) -> float:
        return float(np.mean([np.mean(results[d][tau]) for d in DATASET_ORDER]))

    best_small = max(macro(0.05), macro(0.10), macro(0.20))
    assert best_small >= macro(1.0) - 0.02, {t: macro(t) for t in SELECTIVITIES}
