"""Ablation — member normalization on/off (Section 6.1.2).

Algorithm 1 rescales each surviving rule density curve by its maximum so
no member dominates the median by raw scale. This ablation compares
normalized vs raw combination on the same member curves.

Shape check: normalization does not hurt on macro average (the paper's
rationale: coarse members have systematically larger raw densities).
"""

from __future__ import annotations

import numpy as np

from benchlib import member_curves_for_corpus, scale_note
from repro.core.ensemble import combine_and_detect
from repro.evaluation.metrics import best_score
from repro.evaluation.tables import format_float, format_table

ABLATION_DATASETS = ["TwoLeadECG", "Trace"]
VARIANTS = {
    "normalized (by max)": dict(normalize_members=True),
    "raw member curves": dict(normalize_members=False),
}


def bench_ablation_normalization(benchmark, report):
    def run():
        results: dict[str, dict[str, list[float]]] = {}
        for dataset in ABLATION_DATASETS:
            per_variant: dict[str, list[float]] = {v: [] for v in VARIANTS}
            for case, curves in member_curves_for_corpus(dataset):
                for name, options in VARIANTS.items():
                    candidates = combine_and_detect(
                        curves, case.gt_length, k=3, **options
                    )
                    per_variant[name].append(
                        best_score(candidates, case.gt_location, case.gt_length)
                    )
            results[dataset] = per_variant
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [dataset]
        + [format_float(float(np.mean(results[dataset][v]))) for v in VARIANTS]
        for dataset in ABLATION_DATASETS
    ]
    table = format_table(
        ["Dataset"] + list(VARIANTS),
        rows,
        title="Ablation: average Score with/without max-normalization of members",
    )
    report(table + "\n" + scale_note(), "ablation_normalization.txt")

    macro_norm = float(
        np.mean([np.mean(results[d]["normalized (by max)"]) for d in ABLATION_DATASETS])
    )
    macro_raw = float(
        np.mean([np.mean(results[d]["raw member curves"]) for d in ABLATION_DATASETS])
    )
    assert macro_norm >= macro_raw - 0.05, (macro_norm, macro_raw)
