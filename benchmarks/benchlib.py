"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, printing the
measured values next to the paper's reported ones. Because our data
substrate is synthetic (see DESIGN.md), absolute numbers differ; the benches
check and display the paper's *qualitative* shape — who wins, by roughly
what factor, where the trends bend.

Scale knobs (environment variables):

- ``REPRO_FULL=1`` — paper-scale everything (25 series/dataset, 20 repeats,
  160k-point scalability series, 600k-point case study).
- ``REPRO_SERIES`` — series per dataset for the main suite (default 6).
- ``REPRO_SWEEP_SERIES`` — series per dataset for parameter sweeps
  (default 4, capped at REPRO_SERIES).
- ``REPRO_REPEATS`` — repeats for the selectivity table (default 3).

Heavy shared computations (the five-method suite behind Tables 4–6 and
Figure 10) are cached as JSON under ``benchmarks/results/`` keyed by their
configuration, so re-running individual benches is cheap.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.datasets.planting import AnomalyTestCase, make_corpus
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.baselines import make_baseline_factories
from repro.evaluation.harness import evaluate_methods_on_corpus

# ----------------------------------------------------------------------
# Configuration.
# ----------------------------------------------------------------------

FULL = os.environ.get("REPRO_FULL", "") == "1"


def strict() -> bool:
    """The one authoritative ``REPRO_BENCH_STRICT`` switch.

    ``True`` (the default) means wall-clock gates are *asserted*;
    ``REPRO_BENCH_STRICT=0`` means they are measured and reported only —
    the convention shared CI runners rely on. Every bench and the matrix
    runner's regression gate read the flag through this helper instead of
    re-implementing the parse, so the semantics cannot drift per file.
    Read per call (not cached at import) so tests and the runner can flip
    the environment without reloading modules.
    """
    return os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: Series per dataset for the main five-method suite (paper: 25).
N_CASES = 25 if FULL else int(os.environ.get("REPRO_SERIES", "6"))
#: Series per dataset for the parameter sweeps (paper: 25).
SWEEP_CASES = 25 if FULL else min(N_CASES, int(os.environ.get("REPRO_SWEEP_SERIES", "4")))
#: Repeats for the selectivity table (paper: 20).
REPEATS = 20 if FULL else int(os.environ.get("REPRO_REPEATS", "3"))
#: Corpus generation seed (fixed so every bench sees the same series).
CORPUS_SEED = 0
#: Method seed for the ensemble / GI-Random parameter streams.
METHOD_SEED = 0

DATASET_ORDER = [
    "TwoLeadECG",
    "ECGFiveDay",
    "GunPoint",
    "Wafer",
    "Trace",
    "StarLightCurve",
]
METHOD_ORDER = ["Proposed", "GI-Random", "GI-Fix", "GI-Select", "Discord"]
GI_BASELINES = ["GI-Random", "GI-Fix", "GI-Select"]

RESULTS_DIR = Path(__file__).parent / "results"

# ----------------------------------------------------------------------
# Paper-reported values (embedded so each bench prints paper vs measured).
# ----------------------------------------------------------------------

PAPER_TABLE4 = {
    "TwoLeadECG": [0.3951, 0.2873, 0.0629, 0.1663, 0.4931],
    "ECGFiveDay": [0.3903, 0.2988, 0.2671, 0.1050, 0.4794],
    "GunPoint": [0.4728, 0.3715, 0.2411, 0.0560, 0.4000],
    "Wafer": [0.3179, 0.2126, 0.1382, 0.2480, 0.3090],
    "Trace": [0.5718, 0.2022, 0.3601, 0.3408, 0.2816],
    "StarLightCurve": [0.9369, 0.6930, 0.5301, 0.8759, 0.9161],
}

PAPER_TABLE5 = {
    "TwoLeadECG": [0.72, 0.52, 0.40, 0.24, 0.80],
    "ECGFiveDay": [0.80, 0.44, 0.36, 0.24, 0.80],
    "GunPoint": [0.68, 0.56, 0.44, 0.12, 0.68],
    "Wafer": [0.72, 0.40, 0.36, 0.40, 0.52],
    "Trace": [0.96, 0.40, 0.80, 0.60, 0.52],
    "StarLightCurve": [1.00, 0.96, 0.76, 1.00, 1.00],
}

#: Table 6 cells, keyed by baseline; dataset order as DATASET_ORDER.
PAPER_TABLE6 = {
    "GI-Random": ["12/5/8", "17/3/5", "14/5/6", "13/5/7", "20/1/4", "18/1/6"],
    "GI-Fix": ["17/7/1", "13/5/7", "15/4/6", "17/6/2", "14/1/10", "24/0/1"],
    "GI-Select": ["14/5/6", "18/5/2", "16/8/1", "9/8/8", "14/3/8", "17/0/8"],
    "Discord": ["8/4/13", "9/1/15", "14/7/4", "12/5/8", "18/1/6", "12/0/13"],
}

#: Table 7: wins/ties/losses vs best GI baseline, wmax = amax sweep.
PAPER_TABLE7 = {
    (5, 5): ["1/12/12", "8/9/8", "3/9/13", "3/14/9", "4/11/10", "2/0/23"],
    (10, 10): ["12/5/8", "13/5/7", "14/5/6", "9/8/8", "14/1/10", "17/0/8"],
    (15, 15): ["14/4/7", "17/2/6", "13/4/8", "13/7/5", "15/0/10", "18/0/7"],
    (20, 20): ["12/4/9", "17/2/6", "13/4/8", "13/7/5", "15/0/10", "17/1/7"],
}

#: Table 8: wmax sweep at amax = 10; keys are (wmax, amax).
PAPER_TABLE8 = {
    (5, 10): ["5/9/11", "6/8/11", "5/6/14", "7/9/9", "4/10/11", "1/0/24"],
    (10, 10): ["12/5/8", "13/5/7", "14/5/6", "9/8/8", "14/1/10", "17/0/8"],
    (15, 10): ["10/5/10", "18/3/4", "11/6/8", "18/3/4", "15/0/10", "19/0/6"],
    (20, 10): ["12/4/9", "18/2/5", "10/4/11", "14/3/8", "16/0/9", "20/0/5"],
}

#: Table 9: amax sweep at wmax = 10; keys are (wmax, amax).
PAPER_TABLE9 = {
    (10, 5): ["11/5/9", "8/8/9", "7/8/10", "12/7/6", "11/5/9", "1/1/23"],
    (10, 10): ["12/5/8", "13/5/7", "14/5/6", "9/8/8", "14/1/10", "17/0/8"],
    (10, 15): ["11/6/8", "13/6/6", "13/4/8", "8/8/9", "16/0/9", "15/0/10"],
    (10, 20): ["11/4/10", "14/5/6", "13/4/8", "9/9/7", "15/0/10", "12/1/12"],
}

ENSEMBLE_SIZES = [5, 10, 25, 50]

PAPER_TABLE10 = {
    "TwoLeadECG": [0.3424, 0.3488, 0.3912, 0.3951],
    "ECGFiveDay": [0.3700, 0.3882, 0.4168, 0.3903],
    "GunPoint": [0.3128, 0.4629, 0.4965, 0.4728],
    "Wafer": [0.2308, 0.2637, 0.2839, 0.3179],
    "Trace": [0.4767, 0.5789, 0.5994, 0.5718],
    "StarLightCurve": [0.8244, 0.7593, 0.8676, 0.9369],
}

PAPER_TABLE11 = {
    "TwoLeadECG": [0.52, 0.60, 0.72, 0.72],
    "ECGFiveDay": [0.68, 0.72, 0.76, 0.80],
    "GunPoint": [0.56, 0.76, 0.68, 0.68],
    "Wafer": [0.44, 0.64, 0.60, 0.72],
    "Trace": [0.76, 0.96, 0.96, 0.96],
    "StarLightCurve": [1.00, 1.00, 1.00, 1.00],
}

SELECTIVITIES = [0.05, 0.10, 0.20, 0.40, 0.80, 1.00]

#: Table 12 cells: (mean, std) per selectivity.
PAPER_TABLE12 = {
    "TwoLeadECG": [(0.4149, 0.040), (0.4196, 0.032), (0.4000, 0.026), (0.3882, 0.027), (0.3354, 0.036), (0.3071, 0.032)],
    "ECGFiveDay": [(0.4250, 0.042), (0.4100, 0.045), (0.3800, 0.038), (0.3700, 0.037), (0.3500, 0.024), (0.3200, 0.036)],
    "GunPoint": [(0.4880, 0.042), (0.5000, 0.037), (0.5050, 0.035), (0.4880, 0.025), (0.4300, 0.023), (0.4120, 0.023)],
    "Wafer": [(0.3390, 0.050), (0.3710, 0.042), (0.3370, 0.027), (0.3110, 0.027), (0.2700, 0.032), (0.2600, 0.037)],
    "Trace": [(0.6136, 0.037), (0.6017, 0.035), (0.5972, 0.025), (0.5864, 0.024), (0.4997, 0.046), (0.4166, 0.042)],
    "StarLightCurve": [(0.9057, 0.017), (0.9183, 0.016), (0.9327, 0.009), (0.9052, 0.012), (0.7359, 0.021), (0.6280, 0.021)],
}

WINDOW_FRACTIONS = [0.6, 0.7, 0.8, 0.9, 1.0]

PAPER_TABLE13 = {
    "TwoLeadECG": [0.4620, 0.4605, 0.4107, 0.4259, 0.3951],
    "ECGFiveDay": [0.4391, 0.3691, 0.3535, 0.3797, 0.3903],
    "GunPoint": [0.4373, 0.4992, 0.4680, 0.4371, 0.4728],
    "Wafer": [0.3095, 0.4195, 0.3389, 0.2824, 0.3179],
    "Trace": [0.5229, 0.5911, 0.5689, 0.5852, 0.5718],
    "StarLightCurve": [0.8624, 0.8998, 0.9216, 0.9048, 0.9369],
}

PAPER_TABLE14 = {
    "TwoLeadECG": [0.72, 0.84, 0.80, 0.76, 0.72],
    "ECGFiveDay": [0.96, 0.80, 0.84, 0.72, 0.80],
    "GunPoint": [0.84, 0.68, 0.72, 0.64, 0.68],
    "Wafer": [0.56, 0.64, 0.52, 0.52, 0.72],
    "Trace": [1.00, 1.00, 1.00, 1.00, 0.96],
    "StarLightCurve": [1.00, 1.00, 1.00, 1.00, 1.00],
}

# ----------------------------------------------------------------------
# Corpora and the shared five-method suite.
# ----------------------------------------------------------------------

_corpus_cache: dict[tuple[str, int], list[AnomalyTestCase]] = {}


def corpus_for(dataset_name: str, n_cases: int) -> list[AnomalyTestCase]:
    """The evaluation corpus of a dataset (cached; prefix-stable in size).

    ``make_corpus`` spawns per-case child generators from ``CORPUS_SEED``,
    so a smaller corpus is an exact prefix of a larger one — sweeps can use
    fewer cases and still compare per-case against the main suite.
    """
    key = (dataset_name, n_cases)
    if key not in _corpus_cache:
        _corpus_cache[key] = make_corpus(
            DATASETS[dataset_name], n_cases=n_cases, seed=CORPUS_SEED
        )
    return _corpus_cache[key]


def _suite_cache_path() -> Path:
    return RESULTS_DIR / f"suite_cases{N_CASES}_seed{CORPUS_SEED}_m{METHOD_SEED}.json"


def run_main_suite() -> dict[str, dict[str, list[float]]]:
    """The five-method comparison behind Tables 4–6 and Figure 10.

    Returns ``{dataset: {method: [per-case Score]}}``, cached on disk.
    """
    cache = _suite_cache_path()
    if cache.exists():
        loaded = json.loads(cache.read_text())
        # A cache is only valid if it covers every dataset AND every method
        # per dataset: checking the dataset set alone meant a method added
        # to METHOD_ORDER silently reused a stale suite missing it, and
        # downstream benches KeyError'd. On any mismatch, fall through and
        # recompute (the write below replaces the stale file).
        if set(loaded) == set(DATASET_ORDER) and all(
            set(loaded[dataset]) >= set(METHOD_ORDER) for dataset in loaded
        ):
            return loaded
    results: dict[str, dict[str, list[float]]] = {}
    for dataset_name in DATASET_ORDER:
        corpus = corpus_for(dataset_name, N_CASES)
        factories = make_baseline_factories(seed=METHOD_SEED)
        method_scores = evaluate_methods_on_corpus(corpus, factories)
        results[dataset_name] = {
            name: list(scores.scores) for name, scores in method_scores.items()
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    cache.write_text(json.dumps(results, indent=1))
    return results


def best_gi_baseline_scores(suite: dict[str, dict[str, list[float]]], dataset: str) -> list[float]:
    """Per-case scores of the best (by average) GI baseline on a dataset.

    This is the comparator of Tables 7–9 ("the best of the GI-Random,
    GI-Fix, and GI-Select methods for each dataset").
    """
    best_name = max(GI_BASELINES, key=lambda name: float(np.mean(suite[dataset][name])))
    return suite[dataset][best_name]


def sweep_ensemble_scores(
    dataset_name: str,
    *,
    max_paa_size: int = 10,
    max_alphabet_size: int = 10,
    ensemble_size: int = 50,
    selectivity: float = 0.4,
    n_cases: int | None = None,
    window: int | None = None,
    seed: int = METHOD_SEED,
    k: int = 3,
) -> list[float]:
    """Per-case Scores of the ensemble under one parameter setting (cached).

    The workhorse of the Tables 7–9 and 13–14 sweeps: runs the ensemble
    detector with the given ranges/window over the dataset's corpus and
    returns the per-case best top-``k`` Scores, caching to JSON.
    """
    from repro.core.ensemble import EnsembleGrammarDetector
    from repro.evaluation.metrics import best_score

    n_cases = SWEEP_CASES if n_cases is None else n_cases
    corpus = corpus_for(dataset_name, n_cases)
    window = corpus[0].gt_length if window is None else window
    # The selectivity component is round-based, not truncation-based:
    # ``int(0.29 * 100)`` is 28 (binary float truncation), so 0.29 and 0.28
    # used to collide on the same cache file. ``%g`` keeps the full value
    # (0.05 -> "0.05", 1.0 -> "1") with no float-repr noise. ``k`` is part
    # of the key too — it changes the returned scores, so omitting it
    # served stale results to any caller varying k.
    cache_key = (
        f"sweep_{dataset_name}_w{max_paa_size}_a{max_alphabet_size}"
        f"_N{ensemble_size}_t{round(selectivity, 6):g}_c{n_cases}"
        f"_win{window}_s{seed}_k{k}.json"
    )
    cache = RESULTS_DIR / cache_key
    if cache.exists():
        return json.loads(cache.read_text())
    detector = EnsembleGrammarDetector(
        window,
        max_paa_size=max_paa_size,
        max_alphabet_size=max_alphabet_size,
        ensemble_size=ensemble_size,
        selectivity=selectivity,
        seed=seed,
    )
    scores = [
        best_score(detector.detect(case.series, k), case.gt_location, case.gt_length)
        for case in corpus
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    cache.write_text(json.dumps(scores))
    return scores


def member_curves_for_corpus(
    dataset_name: str,
    *,
    ensemble_size: int = 50,
    n_cases: int | None = None,
    seed: int = METHOD_SEED,
):
    """Raw member density curves per case — fuel for the tau/N/combiner sweeps.

    Yields ``(case, member_curves)`` pairs; the curves are in *sample order*
    so a prefix of them is itself a uniform parameter sample (used by the
    ensemble-size sweep).
    """
    from repro.core.ensemble import EnsembleGrammarDetector

    n_cases = SWEEP_CASES if n_cases is None else n_cases
    corpus = corpus_for(dataset_name, n_cases)
    window = corpus[0].gt_length
    detector = EnsembleGrammarDetector(
        window, ensemble_size=ensemble_size, seed=seed
    )
    for case in corpus:
        report = detector.ensemble_report(case.series, keep_member_curves=True)
        yield case, list(report.member_curves)


def scale_note() -> str:
    """One-line description of the active scale configuration."""
    mode = "FULL (paper scale)" if FULL else "reduced"
    return (
        f"[config: {mode}; series/dataset={N_CASES} (paper 25); "
        f"sweep series={SWEEP_CASES}; repeats={REPEATS} (paper 20); "
        f"set REPRO_FULL=1 for paper scale]"
    )
