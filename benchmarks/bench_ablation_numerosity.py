"""Ablation — numerosity reduction on/off (Section 4.2).

The paper motivates numerosity reduction by the explosion of trivial-match
rules without it. This ablation runs the single-run GI detector with and
without reduction and reports both accuracy and grammar compactness.

Shape checks: without reduction the grammar blows up (far more symbols),
and accuracy does not improve for the cost.
"""

from __future__ import annotations

import numpy as np

from benchlib import SWEEP_CASES, corpus_for, scale_note
from repro.core.detector import GrammarAnomalyDetector
from repro.evaluation.metrics import best_score
from repro.evaluation.tables import format_float, format_table

ABLATION_DATASETS = ["TwoLeadECG", "Trace"]


def bench_ablation_numerosity(benchmark, report):
    def run():
        results = {}
        for dataset in ABLATION_DATASETS:
            corpus = corpus_for(dataset, SWEEP_CASES)
            window = corpus[0].gt_length
            scores = {"exact": [], "none": []}
            sizes = {"exact": [], "none": []}
            for case in corpus:
                for strategy in ("exact", "none"):
                    detector = GrammarAnomalyDetector(
                        window, paa_size=5, alphabet_size=5, numerosity=strategy
                    )
                    candidates = detector.detect(case.series, k=3)
                    scores[strategy].append(
                        best_score(candidates, case.gt_location, case.gt_length)
                    )
                    sizes[strategy].append(detector.grammar(case.series).grammar_size())
            results[dataset] = (scores, sizes)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for dataset in ABLATION_DATASETS:
        scores, sizes = results[dataset]
        rows.append(
            [
                dataset,
                format_float(float(np.mean(scores["exact"]))),
                format_float(float(np.mean(scores["none"]))),
                f"{np.mean(sizes['exact']):.0f}",
                f"{np.mean(sizes['none']):.0f}",
            ]
        )
    table = format_table(
        ["Dataset", "Score (exact NR)", "Score (no NR)", "grammar size (exact)", "grammar size (none)"],
        rows,
        title="Ablation: numerosity reduction on/off (single-run GI, w=5, a=5)",
    )
    report(table + "\n" + scale_note(), "ablation_numerosity.txt")

    for dataset in ABLATION_DATASETS:
        scores, sizes = results[dataset]
        # Without reduction the grammar is dramatically larger...
        assert np.mean(sizes["none"]) > 2.0 * np.mean(sizes["exact"]), dataset
        # ...and accuracy is no better than with reduction (macro).
    macro_exact = float(
        np.mean([np.mean(results[d][0]["exact"]) for d in ABLATION_DATASETS])
    )
    macro_none = float(
        np.mean([np.mean(results[d][0]["none"]) for d in ABLATION_DATASETS])
    )
    assert macro_exact >= macro_none - 0.1, (macro_exact, macro_none)
