"""Figure 1 — the parameter-selection problem on a dishwasher power trace.

Reproduces the paper's motivating experiment: a dishwasher series with one
anomalous cycle (unusually short power usage), scored by the single-run GI
detector at every (w, a) in the grid. The printed grid is the data behind
Figure 1 (bottom); the shape checks encode the figure's message — scores
vary wildly across the grid, good combinations are isolated, and the
ensemble matches the best grid cell without knowing it in advance.
"""

from __future__ import annotations

import numpy as np

from benchlib import scale_note
from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.power import dishwasher_series
from repro.evaluation.metrics import best_score
from repro.evaluation.tables import format_table

GRID_W = range(2, 11)
GRID_A = range(2, 11)


def bench_fig01_parameter_sensitivity(benchmark, report):
    series, anomaly = dishwasher_series(n_cycles=20, seed=0)
    window = anomaly.length

    def build():
        grid: dict[tuple[int, int], float] = {}
        for w in GRID_W:
            for a in GRID_A:
                detector = GrammarAnomalyDetector(window, w, a)
                candidates = detector.detect(series, k=3)
                grid[(w, a)] = best_score(candidates, anomaly.position, anomaly.length)
        ensemble = EnsembleGrammarDetector(window, seed=0)
        ensemble_score = best_score(
            ensemble.detect(series, k=3), anomaly.position, anomaly.length
        )
        return grid, ensemble_score

    grid, ensemble_score = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for w in GRID_W:
        rows.append([f"w={w}"] + [f"{grid[(w, a)]:.2f}" for a in GRID_A])
    table = format_table(
        ["Score"] + [f"a={a}" for a in GRID_A],
        rows,
        title="Figure 1 (bottom): single-run GI Score per (w, a) on the dishwasher trace",
    )
    values = np.array(list(grid.values()))
    best_combo = max(grid, key=grid.get)
    summary = (
        f"best combination: w={best_combo[0]}, a={best_combo[1]} "
        f"(Score {grid[best_combo]:.2f}); grid mean {values.mean():.2f}, "
        f"grid min {values.min():.2f}; ensemble Score {ensemble_score:.2f}"
    )
    report(table + "\n" + summary + "\n" + scale_note(), "fig01.txt")

    # Shape checks: the grid is volatile (Figure 1's point), and the
    # ensemble beats the expected value of guessing a combination at random
    # (the grid mean — what GI-Random achieves on average) without knowing
    # the grid.
    assert values.max() - values.min() >= 0.3, "grid unexpectedly flat"
    assert values.min() < 0.5 * values.max() + 1e-9
    assert ensemble_score >= values.mean() - 0.05
