"""Bounded-memory streaming soak: flat RSS and steady per-point cost.

The eviction subsystem's claim (ISSUE 3): a `StreamingEnsembleDetector`
with ``capacity=`` runs an arbitrarily long stream in O(capacity + N·w)
memory, with per-point ingest cost that does not drift as the stream grows
— versus the unbounded path whose state and token lists grow linearly.

This bench feeds a long random-walk stream chunk-by-chunk through a
capacity-bounded sliding ensemble and through a decay ensemble, sampling
process RSS (``/proc/self/statm``) and per-chunk ingest time, then feeds a
(truncated) unbounded baseline for the growth comparison. It asserts:

- **memory, always**: after warmup (two capacities of stream), RSS drifts
  by less than 10%; retained points, buffer allocation, and live token
  counts stay bounded by the capacity, not the stream.
- **timing, only when ``REPRO_BENCH_STRICT`` is not 0**: the mean per-chunk
  ingest time of the last third is within 3x of the first third's (shared
  CI runners gate on memory but merely report timing).

Scale: ``REPRO_FULL=1`` runs the acceptance-scale 1M-point stream at
capacity 100k; otherwise ``REPRO_EVICT_POINTS`` (default 150k),
``REPRO_EVICT_CAPACITY`` (default 25k) and ``REPRO_EVICT_CHUNK`` (default
10k) apply. Results are also written to ``results/BENCH_streaming_eviction
.json`` so CI can accumulate the perf trajectory per PR.
"""

from __future__ import annotations

import gc
import os

import numpy as np

from benchlib import FULL, RESULTS_DIR, scale_note, strict
from repro.core.streaming import StreamingEnsembleDetector
from repro.datasets.generators import random_walk
from repro.evaluation.tables import format_table
from repro.utils.timing import Timer
from runner.schema import write_bench_payload

POINTS = 1_000_000 if FULL else int(os.environ.get("REPRO_EVICT_POINTS", "150000"))
CAPACITY = 100_000 if FULL else int(os.environ.get("REPRO_EVICT_CAPACITY", "25000"))
CHUNK = int(os.environ.get("REPRO_EVICT_CHUNK", "10000"))
#: The unbounded baseline only needs to demonstrate linear growth; feeding
#: it the full FULL-scale stream would need GBs for its token lists.
BASELINE_POINTS = min(POINTS, 200_000)
WINDOW = 100
MEMBERS = 10
SEED = 0

# Keep the run meaningful if someone shrinks POINTS below the capacity.
CAPACITY = max(WINDOW, min(CAPACITY, POINTS // 5))


def _rss_bytes() -> int | None:
    """Current resident set size, or None off-Linux."""
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        return None


def _state_allocation(detector: StreamingEnsembleDetector) -> int:
    state = detector.state
    return state._values.nbytes + state._prefix.nbytes + state._prefix_sq.nbytes


def _live_tokens(detector: StreamingEnsembleDetector) -> int:
    return sum(member.n_tokens for member in detector.members)


def _feed_and_sample(detector, series) -> dict:
    """Feed the stream in chunks, sampling RSS and per-chunk ingest time."""
    warmup_point = min(2 * CAPACITY, len(series) // 2)
    chunk_times: list[float] = []
    rss_warm = None
    for offset in range(0, len(series), CHUNK):
        with Timer() as timer:
            detector.extend(series[offset : offset + CHUNK])
        chunk_times.append(timer.elapsed)
        if rss_warm is None and len(detector.state) >= warmup_point:
            gc.collect()
            rss_warm = _rss_bytes()
    gc.collect()
    third = max(1, len(chunk_times) // 3)
    return {
        "rss_warm": rss_warm,
        "rss_end": _rss_bytes(),
        "early_chunk_s": float(np.mean(chunk_times[:third])),
        "late_chunk_s": float(np.mean(chunk_times[-third:])),
        "total_s": float(np.sum(chunk_times)),
    }


def bench_streaming_eviction_flat_memory(benchmark, report):
    series = random_walk(POINTS, seed=SEED)

    measured: dict[str, dict] = {}

    def _bounded_run() -> float:
        detector = StreamingEnsembleDetector(
            window=WINDOW, ensemble_size=MEMBERS, seed=SEED,
            capacity=CAPACITY, policy="sliding",
        )
        stats = _feed_and_sample(detector, series)
        measured["sliding"] = stats
        measured["sliding_detector"] = {
            "live_points": detector.state.live_length,
            "allocation_bytes": _state_allocation(detector),
            "live_tokens": _live_tokens(detector),
            "retired_tokens": sum(m.retired_tokens for m in detector.members),
        }
        # Sanity: the bounded state's live tail is bitwise the stream tail.
        assert np.array_equal(detector.state.values, series[detector.state.start :])
        assert detector.detect(3)
        return stats["total_s"]

    benchmark.pedantic(_bounded_run, rounds=1, iterations=1)

    decay = StreamingEnsembleDetector(
        window=WINDOW, ensemble_size=MEMBERS, seed=SEED,
        capacity=CAPACITY, policy="decay",
    )
    measured["decay"] = _feed_and_sample(decay, series)
    measured["decay_detector"] = {
        "live_points": decay.state.live_length,
        "allocation_bytes": _state_allocation(decay),
        "live_tokens": _live_tokens(decay),
        "retired_generations": sum(
            m._generations.retired_generations for m in decay.members
        ),
        "retired_rules": sum(m._generations.retired_rules for m in decay.members),
    }
    generation_size = decay.state.generation_size
    del decay
    gc.collect()

    unbounded = StreamingEnsembleDetector(window=WINDOW, ensemble_size=MEMBERS, seed=SEED)
    measured["unbounded"] = _feed_and_sample(unbounded, series[:BASELINE_POINTS])
    measured["unbounded_detector"] = {
        "live_points": unbounded.state.live_length,
        "allocation_bytes": _state_allocation(unbounded),
        "live_tokens": _live_tokens(unbounded),
    }
    del unbounded
    gc.collect()

    def _fmt_bytes(n: int) -> str:
        return f"{n / 1e6:,.1f} MB"

    def _row(name: str, stats: dict, detector_stats: dict, points: int) -> list[str]:
        rate = points / max(stats["total_s"], 1e-9)
        return [
            name,
            f"{points:,}",
            f"{detector_stats['live_points']:,}",
            _fmt_bytes(detector_stats["allocation_bytes"]),
            f"{detector_stats['live_tokens']:,}",
            f"{rate:,.0f}",
        ]

    table = format_table(
        ["Path", "Points fed", "Points live", "State alloc", "Live tokens", "Points/s"],
        [
            _row("unbounded (baseline)", measured["unbounded"], measured["unbounded_detector"], BASELINE_POINTS),
            _row(f"sliding (cap {CAPACITY:,})", measured["sliding"], measured["sliding_detector"], POINTS),
            _row(f"decay (cap {CAPACITY:,}, gen {generation_size:,})", measured["decay"], measured["decay_detector"], POINTS),
        ],
        title=(
            f"Streaming eviction soak: {POINTS:,}-point stream, "
            f"{MEMBERS}-member ensemble (window {WINDOW}, chunk {CHUNK:,})"
        ),
    )

    rss_lines = []
    for name in ("sliding", "decay"):
        stats = measured[name]
        if stats["rss_warm"] and stats["rss_end"]:
            delta = stats["rss_end"] - stats["rss_warm"]
            rss_lines.append(
                f"{name}: RSS {_fmt_bytes(stats['rss_warm'])} after warmup -> "
                f"{_fmt_bytes(stats['rss_end'])} at end "
                f"({delta / stats['rss_warm']:+.1%}); per-chunk "
                f"{stats['early_chunk_s'] * 1e3:.1f} ms early vs "
                f"{stats['late_chunk_s'] * 1e3:.1f} ms late"
            )
    report(table + "\n" + "\n".join(rss_lines) + "\n" + scale_note(), "streaming_eviction.txt")

    write_bench_payload(
        "streaming_eviction",
        {
            "points": POINTS,
            "capacity": CAPACITY,
            "chunk": CHUNK,
            "members": MEMBERS,
            "window": WINDOW,
            "baseline_points": BASELINE_POINTS,
            "strict": strict(),
            **{
                key: value
                for key, value in measured.items()
                if isinstance(value, dict)
            },
        },
        RESULTS_DIR,
    )

    # ---- memory gates: asserted on every run (strict *for memory*). ----
    sliding = measured["sliding_detector"]
    assert sliding["live_points"] <= CAPACITY
    assert sliding["allocation_bytes"] <= 3 * 8 * 4 * (CAPACITY + CHUNK), (
        "state allocation grew past O(capacity + chunk)"
    )
    assert sliding["live_tokens"] <= measured["unbounded_detector"]["live_tokens"] or (
        POINTS <= BASELINE_POINTS
    )
    decay_stats = measured["decay_detector"]
    assert decay_stats["live_points"] <= CAPACITY + (generation_size or CAPACITY)
    for name in ("sliding", "decay"):
        stats = measured[name]
        if stats["rss_warm"] and stats["rss_end"]:
            drift = (stats["rss_end"] - stats["rss_warm"]) / stats["rss_warm"]
            assert drift < 0.10, (
                f"{name}: RSS drifted {drift:+.1%} after warmup — memory is "
                "not flat over the stream"
            )

    # ---- timing gate: steady per-point cost (reported always, gated
    # only when strict — shared runners are too noisy to merge-block). ----
    for name in ("sliding", "decay"):
        stats = measured[name]
        ratio = stats["late_chunk_s"] / max(stats["early_chunk_s"], 1e-9)
        if strict():
            assert ratio < 3.0, (
                f"{name}: per-chunk ingest drifted {ratio:.2f}x from early to "
                "late stream — per-point cost is not steady"
            )
