"""Table 6 — per-series wins/ties/losses of the ensemble vs every baseline.

For each dataset and baseline, counts the test series where the ensemble's
best top-3 Score beats / ties / trails the baseline's, printed in the
paper's ``w/t/l`` cell format next to the paper's cells.
"""

from __future__ import annotations

from benchlib import DATASET_ORDER, PAPER_TABLE6, scale_note
from repro.evaluation.comparison import wins_ties_losses
from repro.evaluation.tables import format_table

BASELINES = ["GI-Random", "GI-Fix", "GI-Select", "Discord"]


def bench_table06_wins_ties_losses(benchmark, suite_results, report):
    def build():
        rows = []
        records = {}
        for baseline in BASELINES:
            cells = [baseline]
            for column, dataset in enumerate(DATASET_ORDER):
                result = wins_ties_losses(
                    suite_results[dataset]["Proposed"], suite_results[dataset][baseline]
                )
                records[(baseline, dataset)] = result
                cells.append(f"{result} | {PAPER_TABLE6[baseline][column]}")
            rows.append(cells)
        return rows, records

    rows, records = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["vs Baseline"] + [f"{d} | paper" for d in DATASET_ORDER]
    table = format_table(
        headers,
        rows,
        title="Table 6: Wins/ties/losses of ensemble grammar induction against all baselines",
    )
    report(table + "\n" + scale_note(), "table06.txt")

    # Shape check: against the GI variants the ensemble wins at least as
    # often as it loses on most datasets (paper: wins in more than half of
    # the series in most datasets).
    for baseline in ["GI-Random", "GI-Fix", "GI-Select"]:
        favourable = sum(
            records[(baseline, d)].wins >= records[(baseline, d)].losses
            for d in DATASET_ORDER
        )
        assert favourable >= 4, (
            f"vs {baseline}: wins>=losses on only {favourable}/6 datasets"
        )
