"""Figure 10 — per-series Score scatter of the ensemble vs each baseline.

The paper's Figure 10 plots one dot per test series at (ensemble Score,
baseline Score); dots below the diagonal are ensemble wins. A terminal
bench cannot draw the plot, so this regenerates the underlying data: the
coordinate list per (dataset, baseline) panel plus the win/tie/loss summary
each panel visualizes, and an ASCII rendering of the diagonal split.
"""

from __future__ import annotations

from benchlib import DATASET_ORDER, scale_note
from repro.evaluation.comparison import wins_ties_losses
from repro.evaluation.tables import format_table

BASELINES = ["GI-Random", "GI-Fix", "GI-Select", "Discord"]


def _panel_lines(ensemble: list[float], baseline: list[float]) -> list[str]:
    pairs = ", ".join(f"({e:.2f},{b:.2f})" for e, b in zip(ensemble, baseline))
    return [f"    points: {pairs}"]


def bench_fig10_scatter_data(benchmark, suite_results, report):
    def build():
        lines = ["Figure 10: per-series (ensemble Score, baseline Score) pairs", ""]
        summary_rows = []
        for dataset in DATASET_ORDER:
            ensemble = suite_results[dataset]["Proposed"]
            for baseline in BASELINES:
                scores = suite_results[dataset][baseline]
                record = wins_ties_losses(ensemble, scores)
                zero_baseline = sum(
                    1 for e, b in zip(ensemble, scores) if b == 0.0 and e > 0.0
                )
                zero_ensemble = sum(
                    1 for e, b in zip(ensemble, scores) if e == 0.0 and b > 0.0
                )
                lines.append(f"  {dataset} vs {baseline}: w/t/l = {record}")
                lines.extend(_panel_lines(ensemble, scores))
                summary_rows.append(
                    [dataset, baseline, str(record), str(zero_baseline), str(zero_ensemble)]
                )
        return lines, summary_rows

    lines, summary_rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["Dataset", "Baseline", "w/t/l", "baseline-missed", "ensemble-missed"],
        summary_rows,
        title="Figure 10 summary: lower-triangle (win) dominance per panel",
    )
    report("\n".join(lines) + "\n\n" + table + "\n" + scale_note(), "fig10.txt")

    # Shape check (Section 7.1.4): cases where the baseline completely
    # misses (Score 0) while the ensemble scores are common against the GI
    # variants; the opposite is rare.
    gi_rows = [r for r in summary_rows if r[1] != "Discord"]
    baseline_missed = sum(int(r[3]) for r in gi_rows)
    ensemble_missed = sum(int(r[4]) for r in gi_rows)
    assert baseline_missed >= ensemble_missed
