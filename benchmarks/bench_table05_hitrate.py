"""Table 5 — performance evaluation by HitRate.

HitRate is the fraction of test series where any of the method's top-3
candidates overlaps the planted anomaly (Score > 0). Reported per dataset
for all five methods, next to the paper's values.
"""

from __future__ import annotations

import numpy as np

from benchlib import (
    DATASET_ORDER,
    METHOD_ORDER,
    PAPER_TABLE5,
    scale_note,
)
from repro.evaluation.metrics import hit_rate
from repro.evaluation.tables import format_float, format_table


def bench_table05_hitrate(benchmark, suite_results, report):
    def build():
        rows = []
        rates: dict[str, dict[str, float]] = {}
        for dataset in DATASET_ORDER:
            cells = [dataset]
            rates[dataset] = {}
            for column, method in enumerate(METHOD_ORDER):
                measured = hit_rate(suite_results[dataset][method])
                rates[dataset][method] = measured
                cells.append(
                    f"{format_float(measured, 2)} | {format_float(PAPER_TABLE5[dataset][column], 2)}"
                )
            rows.append(cells)
        return rows, rates

    rows, rates = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["Dataset"] + [f"{m} | paper" for m in METHOD_ORDER]
    table = format_table(
        headers, rows, title="Table 5: Performance evaluation results (HitRate)"
    )
    report(table + "\n" + scale_note(), "table05.txt")

    # Shape check: the ensemble's HitRate is top-2 among all methods on most
    # datasets (the paper: highest or second-highest on every dataset).
    top2 = 0
    for dataset in DATASET_ORDER:
        ordering = sorted(rates[dataset].values(), reverse=True)
        if rates[dataset]["Proposed"] >= ordering[1] - 1e-9:
            top2 += 1
    assert top2 >= 4, f"ensemble HitRate in top-2 on only {top2}/6 datasets"
    # And it never collapses: macro HitRate stays high.
    macro = np.mean([rates[d]["Proposed"] for d in DATASET_ORDER])
    assert macro >= 0.6
