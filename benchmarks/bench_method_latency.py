"""Per-method detection latency on one representative test series.

Complements the table benches (which run mostly one-shot workloads) with
honest repeated-round timings of each detector on a single Trace test
series — the per-series cost a user pays for each method in Tables 4–6.
"""

from __future__ import annotations

import pytest

from benchlib import corpus_for
from repro.core.detector import GrammarAnomalyDetector
from repro.core.ensemble import EnsembleGrammarDetector
from repro.discord.discords import DiscordDetector
from repro.discord.hotsax import hotsax_discords
from repro.evaluation.baselines import GISelectDetector


@pytest.fixture(scope="module")
def trace_case():
    return corpus_for("Trace", 1)[0]


def bench_latency_single_gi(benchmark, trace_case):
    detector = GrammarAnomalyDetector(trace_case.gt_length, 4, 4)
    benchmark(lambda: detector.detect(trace_case.series, 3))


def bench_latency_ensemble_n50(benchmark, trace_case):
    detector = EnsembleGrammarDetector(trace_case.gt_length, seed=0)
    benchmark(lambda: detector.detect(trace_case.series, 3))


def bench_latency_ensemble_n10(benchmark, trace_case):
    detector = EnsembleGrammarDetector(trace_case.gt_length, ensemble_size=10, seed=0)
    benchmark(lambda: detector.detect(trace_case.series, 3))


def bench_latency_gi_select(benchmark, trace_case):
    detector = GISelectDetector(trace_case.gt_length)
    benchmark(lambda: detector.detect(trace_case.series, 3))


def bench_latency_discord_stomp(benchmark, trace_case):
    detector = DiscordDetector(trace_case.gt_length)
    benchmark(lambda: detector.detect(trace_case.series, 3))


def bench_latency_hotsax(benchmark, trace_case):
    benchmark.pedantic(
        lambda: hotsax_discords(trace_case.series, trace_case.gt_length, k=1),
        rounds=1,
        iterations=1,
    )
