"""Figures 4 & 5 — rule density curves on an ECG series.

Figure 4: an ECG series and its rule density curve, whose minimum marks the
anomalous beat. Figure 5: density curves from different (w, a) values,
ranked by standard deviation — the top-ranked curves localize the anomaly,
the bottom-ranked ones do not (the rationale for Algorithm 1's member
filter). Both are rendered as sparklines with the quantitative checks the
figures make visually.
"""

from __future__ import annotations

import numpy as np

from benchlib import scale_note
from repro.core.anomaly import windowed_means
from repro.core.detector import GrammarAnomalyDetector
from repro.datasets.planting import make_test_case
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.tables import format_table
from repro.utils.sparkline import sparkline

MEMBERS = [(5, 5), (7, 4), (4, 8), (3, 3), (9, 9), (2, 2)]


def bench_fig04_05_density_curves(benchmark, report):
    case = make_test_case(DATASETS["TwoLeadECG"], seed=3)
    window = case.gt_length

    def run():
        members = []
        for w, a in MEMBERS:
            curve = GrammarAnomalyDetector(window, w, a).density_curve(case.series)
            trough = int(np.argmin(windowed_means(curve, window)))
            members.append(((w, a), curve, float(np.std(curve)), trough))
        members.sort(key=lambda item: -item[2])
        return members

    members = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Figure 4: ECG test series and one rule density curve",
        f"  series : {sparkline(case.series, 64)}",
        f"  density: {sparkline(members[0][1], 64)}   (w={members[0][0][0]}, a={members[0][0][1]})",
        f"  ground-truth anomaly at {case.gt_location} (length {case.gt_length})",
        "",
    ]
    rows = []
    for rank, ((w, a), curve, std, trough) in enumerate(members, start=1):
        hit = abs(trough - case.gt_location) <= case.gt_length
        rows.append(
            [
                f"#{rank}",
                f"({w},{a})",
                f"{std:.2f}",
                str(trough),
                "yes" if hit else "no",
                sparkline(curve, 40),
            ]
        )
    table = format_table(
        ["std rank", "(w,a)", "std", "trough", "localizes?", "curve"],
        rows,
        title="Figure 5: member density curves ranked by standard deviation",
    )
    report("\n".join(lines) + table + "\n" + scale_note(), "fig04_05.txt")

    # Shape checks: the top-std member localizes the anomaly; the set of
    # localizing members is concentrated at the top of the std ranking
    # (the paper's Figure 5 shows top-2 localizing, bottom-2 not).
    top_member = members[0]
    assert abs(top_member[3] - case.gt_location) <= case.gt_length
    hits = [abs(m[3] - case.gt_location) <= case.gt_length for m in members]
    first_half_hits = sum(hits[: len(hits) // 2])
    second_half_hits = sum(hits[len(hits) // 2 :])
    assert first_half_hits >= second_half_hits
