"""Table 7 — effect of the sampling ranges, wmax = amax in {5, 10, 15, 20}.

For each range setting, the ensemble is re-run and compared per series
against the best single-parameter GI baseline of each dataset (the paper's
comparator for Tables 7–9), reporting wins/ties/losses.

Shape check: the smallest range (5, 5) is the weakest setting — the paper's
observation that too small a pool cannot produce enough high-quality rule
density curves.
"""

from __future__ import annotations

from benchlib import (
    DATASET_ORDER,
    PAPER_TABLE7,
    SWEEP_CASES,
    best_gi_baseline_scores,
    scale_note,
    sweep_ensemble_scores,
)
from repro.evaluation.comparison import wins_ties_losses
from repro.evaluation.tables import format_table

SETTINGS = [(5, 5), (10, 10), (15, 15), (20, 20)]


def bench_table07_wmax_amax_sweep(benchmark, suite_results, report):
    def build():
        rows = []
        net_wins = {}
        for wmax, amax in SETTINGS:
            cells = [f"amax={amax}, wmax={wmax}"]
            total_wins = total_losses = 0
            for column, dataset in enumerate(DATASET_ORDER):
                ensemble = sweep_ensemble_scores(
                    dataset, max_paa_size=wmax, max_alphabet_size=amax
                )
                baseline = best_gi_baseline_scores(suite_results, dataset)[:SWEEP_CASES]
                record = wins_ties_losses(ensemble, baseline)
                total_wins += record.wins
                total_losses += record.losses
                cells.append(f"{record} | {PAPER_TABLE7[(wmax, amax)][column]}")
            net_wins[(wmax, amax)] = total_wins - total_losses
            rows.append(cells)
        return rows, net_wins

    rows, net_wins = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["Setting"] + [f"{d} | paper" for d in DATASET_ORDER]
    table = format_table(
        headers,
        rows,
        title="Table 7: W/T/L of ensemble vs best GI baseline, wmax = amax sweep",
    )
    report(table + "\n" + scale_note(), "table07.txt")

    # Shape check: (5,5) is not the best setting (paper: worst performance).
    assert net_wins[(5, 5)] <= max(net_wins.values()), net_wins
    assert net_wins[(10, 10)] >= net_wins[(5, 5)], net_wins
