"""Telemetry overhead on the streaming hot path: stage timers on vs off.

The observability PR wrapped the streaming drain's block-level work (PAA,
discretization, grammar feed) and the density poll in
:func:`repro.obs.stages.stage_timer`. The timers fire once per drain
*block* and per poll — never per point — so the per-point cost must be in
the noise. This bench measures the matrix's ``streaming_points`` workload
(chunked ``extend`` + one density poll) with stage timing enabled and
disabled under the warmup+repeats protocol and gates the ratio.

Acceptance claim: stage timing adds < 2% to the streaming per-point cost.
Results are bitwise identical either way (asserted unconditionally); the
wall-clock gate follows the ``REPRO_BENCH_STRICT`` convention. Default
scale is 20k points (REPRO_STREAM_POINTS to override); REPRO_FULL=1 runs
100k points.
"""

from __future__ import annotations

import os

import numpy as np

from benchlib import FULL, RESULTS_DIR, scale_note, strict
from repro.core.streaming import StreamingGrammarDetector
from repro.evaluation.tables import format_table
from repro.obs.stages import set_stage_timing
from repro.utils.timing import collect
from runner.schema import write_bench_payload
from runner.workloads import cached_series, stream_per_point_once

POINTS = 100_000 if FULL else int(os.environ.get("REPRO_STREAM_POINTS", "20000"))
WINDOW = 100
KERNEL = "fast"
SEED = 0
#: Acceptance bound: timers-on may cost at most this ratio of timers-off.
MAX_RATIO = 1.02


def _per_point(enabled: bool) -> dict[str, float]:
    previous = set_stage_timing(enabled)
    try:
        elapsed = stream_per_point_once(KERNEL, POINTS, window=WINDOW, seed=SEED)
    finally:
        set_stage_timing(previous)
    return {"s_per_point": elapsed}


def bench_obs_overhead_streaming(report):
    series = cached_series(POINTS, SEED)

    # Parity first, and unconditionally: the timers wrap computations, they
    # must never change one. Same seed, same chunks, curves compared bitwise.
    curves = {}
    for enabled in (False, True):
        previous = set_stage_timing(enabled)
        try:
            detector = StreamingGrammarDetector(window=WINDOW, paa_size=4, alphabet_size=4)
            detector.extend(series)
            curves[enabled] = detector.density_curve()
        finally:
            set_stage_timing(previous)
    assert np.array_equal(curves[False], curves[True]), (
        "stage timing changed the density curve"
    )

    off = collect(lambda: _per_point(False), warmup=1, repeats=5)["s_per_point"].median
    on = collect(lambda: _per_point(True), warmup=1, repeats=5)["s_per_point"].median
    ratio = on / max(off, 1e-12)

    table = format_table(
        ["Stage timing", "us/point (median)"],
        [
            ["off", f"{off * 1e6:.3f}"],
            ["on", f"{on * 1e6:.3f}"],
        ],
        title=(
            f"Telemetry overhead on a {POINTS:,}-point stream "
            f"(kernel={KERNEL}, window {WINDOW})"
        ),
    )
    report(
        table + f"\noverhead: {(ratio - 1) * 100:+.2f}% (bound +2%)\n" + scale_note(),
        "obs_overhead.txt",
    )

    write_bench_payload(
        "obs_overhead",
        {
            "points": POINTS,
            "window": WINDOW,
            "kernel": KERNEL,
            "off_us_per_point": off * 1e6,
            "on_us_per_point": on * 1e6,
            "ratio": ratio,
        },
        RESULTS_DIR,
    )

    if strict():
        assert ratio < MAX_RATIO, (
            f"stage timing costs {(ratio - 1) * 100:.2f}% per point "
            f"(bound {(MAX_RATIO - 1) * 100:.0f}%)"
        )
