"""Cluster dispatch bench: 1 scheduler + N CLI workers vs the process pool.

Three questions, answered on one machine so the comparison is fair:

1. **Scaling curve** — the same ``detect_batch`` through a
   :class:`ClusterExecutor` with 1 and with N local workers: does adding
   workers scale the way adding process-pool workers does?
2. **Backend tax** — the same batch through a :class:`ProcessExecutor` of
   the same width: what does crossing a TCP socket (instead of a fork +
   shared memory) cost end to end?
3. **Dispatch overhead** — a burst of near-empty tasks over one shared
   series: the per-task round-trip cost (lease + pickle + TCP + result)
   in isolation, per backend.

Parity is asserted unconditionally — every backend must reproduce the
serial reference bitwise, the repo's signature guarantee. Timing gates
only run under ``REPRO_BENCH_STRICT=1`` *and* with at least 2 CPUs (a
single-core machine cannot show scaling). Scale knobs:
``REPRO_CLUSTER_SERIES`` (default 6), ``REPRO_CLUSTER_POINTS`` (default
2000), ``REPRO_CLUSTER_WORKERS`` (default 2). Writes
``benchmarks/results/BENCH_cluster_dispatch.json``.
"""

from __future__ import annotations

import os

import numpy as np

from benchlib import RESULTS_DIR, strict
from repro.core.cluster import ClusterExecutor
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import ProcessExecutor
from repro.datasets.generators import random_walk
from repro.evaluation.tables import format_table
from repro.utils.timing import Timer
from runner.schema import write_bench_payload
from runner.workloads import dispatch_overhead_once

SERIES = int(os.environ.get("REPRO_CLUSTER_SERIES", "6"))
POINTS = int(os.environ.get("REPRO_CLUSTER_POINTS", "2000"))
WORKERS = int(os.environ.get("REPRO_CLUSTER_WORKERS", "2"))
WINDOW = 100
ENSEMBLE = 8
SEED = 5
OVERHEAD_TASKS = 40

#: Generous bring-up waits for shared CI runners.
CLUSTER_KWARGS = dict(worker_wait=120.0, lease_timeout=30.0)


def _make_batch() -> list[np.ndarray]:
    return [random_walk(POINTS, seed=seed) for seed in range(SERIES)]


def _detector(executor=None) -> EnsembleGrammarDetector:
    return EnsembleGrammarDetector(
        window=WINDOW, ensemble_size=ENSEMBLE, seed=SEED, executor=executor
    )


def _timed_batch(executor, batch):
    with Timer() as timer:
        results = _detector(executor).detect_batch(batch, 3)
    return results, timer.elapsed


def bench_cluster_dispatch(report):
    """Scaling + overhead of the TCP cluster backend vs the process pool."""
    batch = _make_batch()
    series = batch[0]
    reference, serial_time = _timed_batch(None, batch)

    rows = []
    payload: dict = {
        "series": SERIES,
        "points": POINTS,
        "workers": WORKERS,
        "window": WINDOW,
        "ensemble": ENSEMBLE,
        "serial_batch_s": serial_time,
        "strict": strict(),
        "cpus": os.cpu_count(),
    }
    rows.append(["serial", "-", f"{serial_time * 1e3:.0f}", "1.00x", "-"])

    with ProcessExecutor(WORKERS) as process_pool:
        process_results, process_time = _timed_batch(process_pool, batch)
        assert process_results == reference, "process backend broke parity"
        process_overhead = dispatch_overhead_once(process_pool, series, OVERHEAD_TASKS)
    payload["process_batch_s"] = process_time
    payload["process_dispatch_ms_per_task"] = process_overhead * 1e3
    rows.append(
        [
            f"process x{WORKERS}",
            "-",
            f"{process_time * 1e3:.0f}",
            f"{serial_time / process_time:.2f}x",
            f"{process_overhead * 1e3:.2f}",
        ]
    )

    cluster_times: dict[int, float] = {}
    for workers in sorted({1, WORKERS}):
        with ClusterExecutor(workers, **CLUSTER_KWARGS) as cluster:
            cluster.start(wait=True)
            cluster_results, cluster_time = _timed_batch(cluster, batch)
            assert cluster_results == reference, "cluster backend broke parity"
            cluster_overhead = dispatch_overhead_once(cluster, series, OVERHEAD_TASKS)
            retried = cluster.stats()["tasks_retried"]
        cluster_times[workers] = cluster_time
        payload[f"cluster_{workers}w_batch_s"] = cluster_time
        payload[f"cluster_{workers}w_dispatch_ms_per_task"] = cluster_overhead * 1e3
        payload[f"cluster_{workers}w_retries"] = retried
        rows.append(
            [
                f"cluster x{workers}",
                f"{workers}",
                f"{cluster_time * 1e3:.0f}",
                f"{serial_time / cluster_time:.2f}x",
                f"{cluster_overhead * 1e3:.2f}",
            ]
        )

    scaling = (
        cluster_times[1] / cluster_times[WORKERS] if WORKERS in cluster_times else 1.0
    )
    payload["cluster_scaling"] = scaling
    text = format_table(
        ["backend", "workers", "batch ms", "vs serial", "dispatch ms/task"],
        rows,
        title=(
            f"Cluster dispatch: {SERIES} x {POINTS}-point series, "
            f"ensemble {ENSEMBLE}, window {WINDOW} "
            f"(overhead over {OVERHEAD_TASKS} empty tasks)"
        ),
    )
    report(text, "bench_cluster_dispatch.txt")

    write_bench_payload("cluster_dispatch", payload, RESULTS_DIR)

    # Bitwise parity was asserted above, unconditionally. The timing gate
    # needs real parallel hardware to be meaningful.
    if strict() and (os.cpu_count() or 1) >= 2 and WORKERS >= 2:
        assert scaling > 1.05, (
            f"adding workers did not scale: 1 worker {cluster_times[1] * 1e3:.0f}ms "
            f"vs {WORKERS} workers {cluster_times[WORKERS] * 1e3:.0f}ms"
        )
