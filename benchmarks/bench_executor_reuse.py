"""Executor micro-benches: pool reuse vs per-call spawn, shm vs pickling.

Two overheads dominated PR 1's parallel path and are what the executor
subsystem removes:

1. **Pool spawn/teardown per call** — every parallel ``detect()`` built a
   fresh ``ProcessPoolExecutor``. On short series the spawn costs more than
   the detection. ``bench_executor_pool_reuse`` runs the same sequence of
   ``detect()`` calls through one reused :class:`ProcessExecutor` vs a
   fresh pool per call.
2. **Pickling the series once per task** — each w-group payload carried its
   own copy of the input. ``bench_shared_memory_series_passing`` isolates
   the transfer layer on a >=100k-point series: the same reused pool runs
   the same touch-task over payloads that carry the series inline (pickled
   per task, the PR-1 way) vs as one shared-memory reference.

Both benches print the numbers and, by default, assert a measured speedup;
set REPRO_BENCH_STRICT=0 to report without asserting (what CI does — a
shared runner's wall clock is too noisy to gate merges on). Scale knobs:
REPRO_EXEC_CALLS (default 6), REPRO_EXEC_POINTS (default 150_000;
REPRO_FULL=1 raises it to 400_000).
"""

from __future__ import annotations

import os

import numpy as np

from benchlib import FULL, RESULTS_DIR, scale_note, strict
from repro.core.ensemble import EnsembleGrammarDetector
from repro.core.executors import ProcessExecutor
from repro.datasets.generators import random_walk
from repro.evaluation.tables import format_table
from repro.utils.timing import Timer
from runner.schema import write_bench_payload
from runner.workloads import touch_task

CALLS = int(os.environ.get("REPRO_EXEC_CALLS", "6"))
# Short on purpose: the reuse bench measures the regime where pool spawn
# rivals the detection itself, which is exactly where reuse pays.
SHORT_POINTS = 1_000
BIG_POINTS = 400_000 if FULL else int(os.environ.get("REPRO_EXEC_POINTS", "150000"))
WINDOW = 100
WORKERS = 2
TASKS = 9  # one per w-group of a wmax=10 ensemble
ROUNDS = 5


def bench_executor_pool_reuse(benchmark, report):
    """One long-lived pool vs a fresh pool per detect() call (short series)."""
    series_sequence = [
        random_walk(SHORT_POINTS, seed=seed) for seed in range(CALLS)
    ]

    def _reused() -> float:
        with Timer() as timer:
            with ProcessExecutor(WORKERS) as executor:
                detector = EnsembleGrammarDetector(
                    window=WINDOW, ensemble_size=10, seed=0, executor=executor
                )
                for series in series_sequence:
                    detector.detect(series, 3)
        return timer.elapsed

    reused_time = benchmark.pedantic(_reused, rounds=1, iterations=1)

    def _per_call_spawn() -> float:
        # The PR-1 shape: every parallel call pays ProcessPoolExecutor
        # spawn/teardown (executor=None + n_jobs>1 creates a pool per call).
        detector = EnsembleGrammarDetector(
            window=WINDOW, ensemble_size=10, seed=0, n_jobs=WORKERS
        )
        with Timer() as timer:
            for series in series_sequence:
                detector.detect(series, 3)
        return timer.elapsed

    # Best of two keeps a single scheduler hiccup on a busy CI runner from
    # deciding the comparison either way.
    reused_time = min(reused_time, _reused())
    spawn_time = min(_per_call_spawn(), _per_call_spawn())

    speedup = spawn_time / max(reused_time, 1e-9)
    table = format_table(
        ["Pool strategy", "Time (s)", "Per call (ms)"],
        [
            ["fresh pool per call (PR 1)", f"{spawn_time:.3f}", f"{1e3 * spawn_time / CALLS:.1f}"],
            ["reused ProcessExecutor", f"{reused_time:.3f}", f"{1e3 * reused_time / CALLS:.1f}"],
        ],
        title=(
            f"{CALLS} consecutive detect() calls, {SHORT_POINTS:,}-point series, "
            f"{WORKERS} workers"
        ),
    )
    report(table + f"\nspeedup: {speedup:.2f}x\n" + scale_note(), "executor_reuse.txt")
    write_bench_payload(
        "executor_reuse",
        {
            "calls": CALLS,
            "points": SHORT_POINTS,
            "workers": WORKERS,
            "spawn_s": spawn_time,
            "reused_s": reused_time,
            "speedup": speedup,
        },
        RESULTS_DIR,
    )
    if strict():
        assert speedup >= 1.1, f"expected pool reuse to beat per-call spawn, got {speedup:.2f}x"


def bench_shared_memory_series_passing(benchmark, report):
    """Shared-memory refs vs per-task pickled copies on a >=100k-point series."""
    series = random_walk(BIG_POINTS, seed=1)
    assert BIG_POINTS >= 100_000

    with ProcessExecutor(WORKERS) as executor:
        # Warm the pool so neither side pays the spawn.
        executor.map(touch_task, [np.zeros(1)])

        def _shared() -> float:
            with Timer() as timer:
                for _ in range(ROUNDS):
                    with executor.share_series(series) as handle:
                        executor.map(touch_task, [handle.ref] * TASKS)
            return timer.elapsed

        shared_time = benchmark.pedantic(_shared, rounds=1, iterations=1)

        def _pickled() -> float:
            with Timer() as timer:
                for _ in range(ROUNDS):
                    # The PR-1 way: the full series pickled into every payload.
                    executor.map(touch_task, [series] * TASKS)
            return timer.elapsed

        shared_time = min(shared_time, _shared())
        pickled_time = min(_pickled(), _pickled())

    per_call = TASKS * ROUNDS
    speedup = pickled_time / max(shared_time, 1e-9)
    table = format_table(
        ["Series transfer", "Time (s)", "Per task (ms)"],
        [
            ["pickled per task (PR 1)", f"{pickled_time:.3f}", f"{1e3 * pickled_time / per_call:.2f}"],
            ["shared-memory reference", f"{shared_time:.3f}", f"{1e3 * shared_time / per_call:.2f}"],
        ],
        title=(
            f"{TASKS} tasks x {ROUNDS} rounds over a {BIG_POINTS:,}-point series "
            f"({series.nbytes / 1e6:.1f} MB), {WORKERS} workers"
        ),
    )
    report(table + f"\nspeedup: {speedup:.2f}x\n" + scale_note(), "executor_shm.txt")
    write_bench_payload(
        "executor_shm",
        {
            "tasks": TASKS,
            "rounds": ROUNDS,
            "points": BIG_POINTS,
            "workers": WORKERS,
            "pickled_s": pickled_time,
            "shared_s": shared_time,
            "speedup": speedup,
        },
        RESULTS_DIR,
    )
    if strict():
        assert speedup >= 1.2, f"expected shared memory to beat pickling, got {speedup:.2f}x"
