"""Ablation — std-based member filtering on/off (Section 6.1.1).

Algorithm 1 keeps only the top-tau members by rule-density standard
deviation. This ablation compares filtering (tau = 40%) against keeping
every member, on the same member curves.

Shape check: filtering does not hurt — it matches or improves the
unfiltered ensemble on macro average (the paper's Figure 5 rationale: the
dropped curves carry no anomaly signal).
"""

from __future__ import annotations

import numpy as np

from benchlib import member_curves_for_corpus, scale_note
from repro.core.ensemble import combine_and_detect
from repro.evaluation.metrics import best_score
from repro.evaluation.tables import format_float, format_table

ABLATION_DATASETS = ["TwoLeadECG", "Trace"]
VARIANTS = {
    "filtered (tau=40%)": dict(select_members=True, selectivity=0.4),
    "unfiltered (all members)": dict(select_members=False),
}


def bench_ablation_selection(benchmark, report):
    def run():
        results: dict[str, dict[str, list[float]]] = {}
        for dataset in ABLATION_DATASETS:
            per_variant: dict[str, list[float]] = {v: [] for v in VARIANTS}
            for case, curves in member_curves_for_corpus(dataset):
                for name, options in VARIANTS.items():
                    candidates = combine_and_detect(
                        curves, case.gt_length, k=3, **options
                    )
                    per_variant[name].append(
                        best_score(candidates, case.gt_location, case.gt_length)
                    )
            results[dataset] = per_variant
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [dataset]
        + [format_float(float(np.mean(results[dataset][v]))) for v in VARIANTS]
        for dataset in ABLATION_DATASETS
    ]
    table = format_table(
        ["Dataset"] + list(VARIANTS),
        rows,
        title="Ablation: average Score with/without std-based member filtering",
    )
    report(table + "\n" + scale_note(), "ablation_selection.txt")

    macro_filtered = float(
        np.mean([np.mean(results[d]["filtered (tau=40%)"]) for d in ABLATION_DATASETS])
    )
    macro_unfiltered = float(
        np.mean(
            [np.mean(results[d]["unfiltered (all members)"]) for d in ABLATION_DATASETS]
        )
    )
    assert macro_filtered >= macro_unfiltered - 0.05, (macro_filtered, macro_unfiltered)
