"""Table 4 — performance evaluation by average Score.

Runs the five methods (Proposed ensemble, GI-Random, GI-Fix, GI-Select,
Discord) over the planted-anomaly corpora and reports the per-dataset
average Score (Eq. 5), next to the paper's reported values.

Shape checks (the claims of Section 7.1.4):
- the ensemble beats every single-parameter GI variant on (nearly) every
  dataset;
- the ensemble is competitive with Discord overall.
"""

from __future__ import annotations

import numpy as np

from benchlib import (
    DATASET_ORDER,
    METHOD_ORDER,
    PAPER_TABLE4,
    corpus_for,
    scale_note,
)
from repro.evaluation.baselines import make_baseline_factories
from repro.evaluation.harness import evaluate_detector
from repro.evaluation.tables import format_float, format_table


def bench_table04_average_score(benchmark, suite_results, report):
    # Benchmark unit: one full ensemble detection on the first TwoLeadECG
    # case (the per-series cost a user pays).
    case = corpus_for("TwoLeadECG", 1)[0]
    factories = make_baseline_factories(seed=1)
    detector = factories["Proposed"](case.gt_length)
    benchmark.pedantic(
        lambda: evaluate_detector(detector, [case]), rounds=3, iterations=1
    )

    headers = ["Dataset"] + [f"{m} | paper" for m in METHOD_ORDER]
    rows = []
    averages: dict[str, dict[str, float]] = {}
    for dataset in DATASET_ORDER:
        cells = [dataset]
        averages[dataset] = {}
        for column, method in enumerate(METHOD_ORDER):
            measured = float(np.mean(suite_results[dataset][method]))
            averages[dataset][method] = measured
            cells.append(
                f"{format_float(measured)} | {format_float(PAPER_TABLE4[dataset][column])}"
            )
        rows.append(cells)
    table = format_table(
        headers, rows, title="Table 4: Performance evaluation results (average Score)"
    )
    report(table + "\n" + scale_note(), "table04.txt")

    # Shape check 1: ensemble >= each GI single-run variant on most datasets.
    for baseline in ["GI-Random", "GI-Fix", "GI-Select"]:
        better = sum(
            averages[d]["Proposed"] >= averages[d][baseline] - 1e-9
            for d in DATASET_ORDER
        )
        assert better >= 4, f"ensemble beat {baseline} on only {better}/6 datasets"
    # Shape check 2: competitive with Discord on the macro average.
    proposed_macro = np.mean([averages[d]["Proposed"] for d in DATASET_ORDER])
    discord_macro = np.mean([averages[d]["Discord"] for d in DATASET_ORDER])
    assert proposed_macro >= 0.75 * discord_macro
