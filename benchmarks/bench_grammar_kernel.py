"""Native-speed grammar core: kernel and streaming hot-path bench (ISSUE 6).

Three measurements, written to ``results/BENCH_grammar_kernel.json`` in the
normalized envelope (machine fingerprint + git SHA, see
``runner/schema.py``):

1. **Grammar stage, per token** — the id-based ``FastSequitur`` (batched
   ``feed_many`` + fused ``occurrence_spans``) against the reference
   ``_SequiturBuilder`` oracle on the same random token stream.
2. **Streaming, per point** — end-to-end ``StreamingGrammarDetector``
   ingest + density poll on a 100k-point stream under the fast and python
   kernels, and against a reconstruction of the seed's scalar path
   (per-window ``sax_word`` + per-word oracle feed), which is what the
   refactor replaced. The headline gate: the fast path is >= 10x the
   scalar per-point cost.
3. **Poll latency vs stream length** — a capacity-bounded sliding member
   polled while ingesting: steady-state poll latency is O(capacity), so it
   must stay flat (within 20%) between 10k and 100k points ingested.

The hot paths themselves are the matrix runner's registered workloads
(``runner/workloads.py``) — this script adds the seed-path comparison and
the narrative gates, it does not hand-roll its own timing. Timing gates
follow the ``REPRO_BENCH_STRICT`` convention via ``benchlib.strict()``:
measured and reported always, asserted unless ``REPRO_BENCH_STRICT=0``
(shared CI runners are too noisy to merge-block on wall clock).
"""

from __future__ import annotations

import os

import numpy as np

from benchlib import FULL, RESULTS_DIR, scale_note, strict
from repro.datasets.generators import random_walk
from repro.evaluation.tables import format_table
from repro.grammar.density import rule_density_curve
from repro.grammar.sequitur import _SequiturBuilder
from repro.sax.numerosity import numerosity_reduction
from repro.sax.sax import sax_word
from repro.utils.timing import Timer
from runner.schema import write_bench_payload
from runner.workloads import grammar_stage_once, poll_latency_curve, stream_per_point_once

POINTS = 300_000 if FULL else int(os.environ.get("REPRO_KERNEL_BENCH_POINTS", "100000"))
#: The scalar reconstruction is ~2 orders slower per point; a slice of the
#: stream is enough to pin its per-point cost.
LEGACY_POINTS = min(POINTS, 10_000)
N_TOKENS = 500_000 if FULL else int(os.environ.get("REPRO_KERNEL_BENCH_TOKENS", "200000"))
ALPHABET = 40
WINDOW = 100
PAA_SIZE = 4
ALPHA_SIZE = 4
CAPACITY = 5_000
SEED = 0


def _grammar_stage() -> dict:
    """Oracle vs fast kernel on one stream, with the large-scale parity check."""
    oracle_s, spans_oracle = grammar_stage_once("python", N_TOKENS, ALPHABET, SEED)
    fast_s, spans_fast = grammar_stage_once("fast", N_TOKENS, ALPHABET, SEED)

    # The bench doubles as a large-scale parity check: identical span
    # multisets from both backends.
    assert np.array_equal(np.sort(spans_oracle[0]), np.sort(spans_fast[0]))
    assert np.array_equal(np.sort(spans_oracle[1]), np.sort(spans_fast[1]))

    return {
        "tokens": N_TOKENS,
        "alphabet": ALPHABET,
        "oracle_us_per_token": oracle_s / N_TOKENS * 1e6,
        "fast_us_per_token": fast_s / N_TOKENS * 1e6,
        "speedup": oracle_s / max(fast_s, 1e-9),
    }


def _legacy_per_point(series: np.ndarray) -> float:
    """The seed's path: one scalar ``sax_word`` per window, oracle feed.

    This is what the detector did per point before the vectorized tokenizer
    and the id kernel: znorm/PAA/symbol lookup on each window in Python,
    numerosity by string compare, one ``feed`` call per kept word.
    """
    with Timer() as timer:
        words = [
            sax_word(series[p : p + WINDOW], PAA_SIZE, ALPHA_SIZE)
            for p in range(len(series) - WINDOW + 1)
        ]
        kept = numerosity_reduction(words, WINDOW)
        builder = _SequiturBuilder()
        for word in kept.words:
            builder.feed(word)
        rule_density_curve(builder.freeze(), kept, len(series))
    return timer.elapsed / len(series)


def bench_grammar_kernel(benchmark, report):
    series = random_walk(POINTS, seed=SEED)

    grammar_stage = _grammar_stage()

    fast_per_point = benchmark.pedantic(
        lambda: stream_per_point_once("fast", POINTS, WINDOW, PAA_SIZE, ALPHA_SIZE, SEED),
        rounds=1,
        iterations=1,
    )
    python_per_point = stream_per_point_once(
        "python", POINTS, WINDOW, PAA_SIZE, ALPHA_SIZE, SEED
    )
    legacy_per_point = _legacy_per_point(series[:LEGACY_POINTS])

    checkpoints = [c for c in (10_000, 25_000, 50_000, 100_000) if c <= POINTS]
    latency_curve = poll_latency_curve(
        series, checkpoints, CAPACITY, WINDOW, PAA_SIZE, ALPHA_SIZE
    )

    legacy_speedup = legacy_per_point / max(fast_per_point, 1e-12)
    kernel_speedup = python_per_point / max(fast_per_point, 1e-12)

    table = format_table(
        ["Path", "Scope", "Per point / token", "vs fast"],
        [
            [
                "scalar seed path",
                f"{LEGACY_POINTS:,} pts",
                f"{legacy_per_point * 1e6:.2f} us/pt",
                f"{legacy_speedup:.1f}x slower",
            ],
            [
                "python kernel (oracle)",
                f"{POINTS:,} pts",
                f"{python_per_point * 1e6:.2f} us/pt",
                f"{kernel_speedup:.1f}x slower",
            ],
            [
                "fast kernel",
                f"{POINTS:,} pts",
                f"{fast_per_point * 1e6:.2f} us/pt",
                "1.0x",
            ],
            [
                "grammar stage: oracle",
                f"{N_TOKENS:,} tok",
                f"{grammar_stage['oracle_us_per_token']:.2f} us/tok",
                f"{grammar_stage['speedup']:.1f}x slower",
            ],
            [
                "grammar stage: fast",
                f"{N_TOKENS:,} tok",
                f"{grammar_stage['fast_us_per_token']:.2f} us/tok",
                "1.0x",
            ],
        ],
        title=f"Grammar kernel hot path (window {WINDOW}, w={PAA_SIZE}, a={ALPHA_SIZE})",
    )
    latency_lines = [
        f"sliding poll @ {row['points_ingested']:,} pts ingested "
        f"(cap {CAPACITY:,}, {row['live_tokens']:,} live tokens): "
        f"{row['poll_ms_median']:.2f} ms"
        for row in latency_curve
    ]
    report(table + "\n" + "\n".join(latency_lines) + "\n" + scale_note(), "grammar_kernel.txt")

    write_bench_payload(
        "grammar_kernel",
        {
            "points": POINTS,
            "window": WINDOW,
            "paa_size": PAA_SIZE,
            "alphabet_size": ALPHA_SIZE,
            "capacity": CAPACITY,
            "strict": strict(),
            "grammar_stage": grammar_stage,
            "streaming_per_point_us": {
                "legacy_scalar": legacy_per_point * 1e6,
                "python_kernel": python_per_point * 1e6,
                "fast_kernel": fast_per_point * 1e6,
                "legacy_over_fast": legacy_speedup,
                "python_over_fast": kernel_speedup,
            },
            "sliding_poll_latency": latency_curve,
        },
        RESULTS_DIR,
    )

    # Always asserted: the fast kernel must actually beat the oracle on the
    # grammar stage (a generous floor; locally it is ~2.5-3x).
    assert grammar_stage["speedup"] > 1.2, (
        f"fast kernel is not faster than the oracle ({grammar_stage['speedup']:.2f}x)"
    )

    if strict():
        # The headline: the refactored per-point cost vs the scalar seed
        # path it replaced.
        assert legacy_speedup >= 10.0, (
            f"expected >= 10x per-point streaming speedup over the scalar "
            f"path, got {legacy_speedup:.1f}x"
        )
        # Flat poll latency: capacity-bounded polls must not grow with the
        # stream. Compare the first checkpoint (10k ingested) to the last.
        first, last = latency_curve[0], latency_curve[-1]
        ratio = last["poll_ms_median"] / max(first["poll_ms_median"], 1e-9)
        assert ratio <= 1.20, (
            f"sliding poll latency grew {ratio:.2f}x between "
            f"{first['points_ingested']:,} and {last['points_ingested']:,} "
            "points ingested — not flat in stream length"
        )
