"""Streaming engine throughput: shared-state vectorized ingest vs the seed
per-point loop.

The engine PR replaced the original streaming design — N private copies of
the stream, each point pushed through a per-member Python loop with a
per-window list comprehension — by one :class:`SharedStreamState` plus a
vectorized ``extend()`` that computes all newly completed windows' PAA rows
and SAX symbols in one numpy pass per distinct PAA size. This bench keeps a
verbatim replica of the seed per-point member and measures both paths on
the same 20-member ensemble workload.

Acceptance claim: the vectorized ingest is at least 5x faster. Default
scale is 20k points (REPRO_STREAM_POINTS to override); REPRO_FULL=1 runs
the acceptance-scale 100k-point stream.
"""

from __future__ import annotations

import os

import numpy as np

from benchlib import FULL, RESULTS_DIR, scale_note
from repro.evaluation.tables import format_table
from repro.grammar.sequitur import _SequiturBuilder
from repro.sax.alphabet import indices_to_word
from repro.sax.breakpoints import gaussian_breakpoints
from repro.sax.znorm import constancy_cutoff
from repro.utils.timing import Timer
from runner.schema import write_bench_payload
from runner.workloads import cached_series, ensemble_ingest_once

POINTS = 100_000 if FULL else int(os.environ.get("REPRO_STREAM_POINTS", "20000"))
WINDOW = 100
MEMBERS = 20
SEED = 0


class _PointwiseMember:
    """Verbatim replica of the seed streaming member (pre-engine).

    Keeps a private copy of the stream (values + prefix sums as Python
    lists) and computes each completed window's SAX word with a per-window
    list comprehension — the O(N·w)-per-point baseline the engine replaced.
    """

    def __init__(self, window: int, paa_size: int, alphabet_size: int) -> None:
        self.window = window
        self.paa_size = paa_size
        self._breakpoints = gaussian_breakpoints(alphabet_size)
        self._values: list[float] = []
        self._prefix: list[float] = [0.0]
        self._prefix_sq: list[float] = [0.0]
        self._last_word: str | None = None
        self._kept_words: list[str] = []
        self._builder = _SequiturBuilder()

    def append(self, value: float) -> None:
        self._values.append(value)
        self._prefix.append(self._prefix[-1] + value)
        self._prefix_sq.append(self._prefix_sq[-1] + value * value)
        if len(self._values) < self.window:
            return
        word = self._window_word(len(self._values) - self.window)
        if word != self._last_word:
            self._kept_words.append(word)
            self._last_word = word
            self._builder.feed(word)

    def _window_word(self, start: int) -> str:
        n = self.window
        stop = start + n
        total = self._prefix[stop] - self._prefix[start]
        total_sq = self._prefix_sq[stop] - self._prefix_sq[start]
        mean = total / n
        variance = max((total_sq - total * total / n) / (n - 1), 0.0)
        std = float(np.sqrt(variance))
        boundaries = np.arange(self.paa_size + 1) * (n / self.paa_size) + start
        floor = np.floor(boundaries).astype(np.int64)
        frac = boundaries - floor
        values = self._values
        prefix = self._prefix
        cumulative = np.array(
            [
                prefix[int(k)] + f * (values[int(k)] if int(k) < len(values) else 0.0)
                for k, f in zip(floor, frac)
            ]
        )
        coefficients = np.diff(cumulative) / (n / self.paa_size)
        if std < constancy_cutoff(mean):
            coefficients = np.zeros(self.paa_size)
        else:
            coefficients = (coefficients - mean) / std
        indices = np.searchsorted(self._breakpoints, coefficients, side="right")
        return indices_to_word(indices)


def bench_streaming_engine_vectorized_vs_pointwise(benchmark, report):
    series = cached_series(POINTS, SEED)

    state: dict = {}

    def _vectorized() -> float:
        # The measured path is the matrix's ``ensemble_ingest`` workload —
        # one shared code path for `repro bench` and this narrative table.
        elapsed, detector = ensemble_ingest_once(POINTS, MEMBERS, WINDOW, SEED)
        state["detector"] = detector
        return elapsed

    vectorized_time = benchmark.pedantic(_vectorized, rounds=1, iterations=1)
    fresh = state["detector"]

    reference = [_PointwiseMember(WINDOW, w, a) for w, a in fresh.parameters]
    with Timer() as pointwise_timer:
        for value in series:
            value = float(value)
            for member in reference:
                member.append(value)
    pointwise_time = pointwise_timer.elapsed

    # Sanity: the two paths must agree token-for-token. The engine members
    # intern their tokens, so compare through the public snapshot rather
    # than reaching for the replica's private word list.
    for new_member, old_member in zip(fresh.members, reference):
        assert list(new_member.tokens().words) == old_member._kept_words

    speedup = pointwise_time / max(vectorized_time, 1e-9)
    rate_vec = POINTS / max(vectorized_time, 1e-9)
    rate_loop = POINTS / max(pointwise_time, 1e-9)
    table = format_table(
        ["Ingest path", "Time (s)", "Points/s"],
        [
            ["seed per-point loop", f"{pointwise_time:.3f}", f"{rate_loop:,.0f}"],
            ["shared-state vectorized", f"{vectorized_time:.3f}", f"{rate_vec:,.0f}"],
        ],
        title=(
            f"Streaming ingest of a {POINTS:,}-point stream into a "
            f"{MEMBERS}-member ensemble (window {WINDOW})"
        ),
    )
    report(table + f"\nspeedup: {speedup:.1f}x\n" + scale_note(), "streaming_engine.txt")

    write_bench_payload(
        "streaming_engine",
        {
            "points": POINTS,
            "members": MEMBERS,
            "window": WINDOW,
            "pointwise_s": pointwise_time,
            "vectorized_s": vectorized_time,
            "speedup": speedup,
        },
        RESULTS_DIR,
    )

    assert speedup >= 5.0, f"expected >=5x over the per-point loop, got {speedup:.2f}x"
