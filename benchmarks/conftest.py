"""Fixtures shared by every bench: the cached suite and report printing."""

from __future__ import annotations

import pytest

from benchlib import RESULTS_DIR, run_main_suite


@pytest.fixture(scope="session")
def suite_results():
    """The five-method suite results (computed once, cached on disk)."""
    return run_main_suite()


@pytest.fixture
def report(capsys):
    """Print a reproduced table to the terminal and persist it to results/.

    ``capsys.disabled()`` bypasses pytest's capture so the tables appear in
    the benchmark run's output (and in ``bench_output.txt``) without -s.
    """

    def _report(text: str, filename: str | None = None) -> None:
        if filename:
            RESULTS_DIR.mkdir(exist_ok=True)
            (RESULTS_DIR / filename).write_text(text + "\n")
        with capsys.disabled():
            print("\n" + text + "\n")

    return _report
