"""Ablation — combiner choice (Section 6.1.3 design decision).

The paper combines normalized member curves with the point-wise *median*.
This ablation evaluates median vs mean vs min vs max on the same member
curves (no recomputation) across two contrasting datasets.

Shape check: the median is never far behind the best combiner — the
robustness rationale for choosing it.
"""

from __future__ import annotations

import numpy as np

from benchlib import member_curves_for_corpus, scale_note
from repro.core.combiners import COMBINERS
from repro.core.ensemble import combine_and_detect
from repro.evaluation.metrics import best_score
from repro.evaluation.tables import format_float, format_table

ABLATION_DATASETS = ["TwoLeadECG", "Trace"]


def bench_ablation_combiner(benchmark, report):
    def run():
        results: dict[str, dict[str, list[float]]] = {}
        for dataset in ABLATION_DATASETS:
            per_combiner: dict[str, list[float]] = {c: [] for c in COMBINERS}
            for case, curves in member_curves_for_corpus(dataset):
                for combiner in COMBINERS:
                    candidates = combine_and_detect(
                        curves, case.gt_length, k=3, combiner=combiner
                    )
                    per_combiner[combiner].append(
                        best_score(candidates, case.gt_location, case.gt_length)
                    )
            results[dataset] = per_combiner
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [dataset]
        + [format_float(float(np.mean(results[dataset][c]))) for c in COMBINERS]
        for dataset in ABLATION_DATASETS
    ]
    table = format_table(
        ["Dataset"] + list(COMBINERS),
        rows,
        title="Ablation: average Score per combiner (same member curves)",
    )
    report(table + "\n" + scale_note(), "ablation_combiner.txt")

    for dataset in ABLATION_DATASETS:
        median = float(np.mean(results[dataset]["median"]))
        best = max(float(np.mean(results[dataset][c])) for c in COMBINERS)
        assert median >= best - 0.15, (dataset, median, best)
