"""Figure 8 — scalability: computation time vs series length.

Measures the wall-clock time of the proposed ensemble (linear in N) and of
STOMP (quadratic in N) on random-walk, synthetic-ECG, and synthetic-EEG
series of increasing length, printing one table per data type as in the
paper's three panels.

Shape checks: STOMP's time grows super-linearly while the ensemble's grows
sub-quadratically, and at the largest length the ensemble is several times
faster (the paper reports about an order of magnitude at 160k points; the
reduced default stops at 40k where the gap is smaller but already wide).
"""

from __future__ import annotations

from benchlib import FULL, scale_note
from repro.core.ensemble import EnsembleGrammarDetector
from repro.datasets.generators import random_walk, synthetic_ecg, synthetic_eeg
from repro.discord.matrix_profile import matrix_profile_stomp
from repro.evaluation.tables import format_table
from repro.utils.timing import Timer

LENGTHS = [20_000, 40_000, 80_000, 160_000] if FULL else [5_000, 10_000, 20_000, 40_000]
WINDOW = 256
GENERATORS = {
    "RW": random_walk,
    "ECG": synthetic_ecg,
    "EEG": synthetic_eeg,
}


def _measure() -> dict[str, dict[int, tuple[float, float]]]:
    results: dict[str, dict[int, tuple[float, float]]] = {}
    for name, generator in GENERATORS.items():
        results[name] = {}
        for length in LENGTHS:
            series = generator(length, seed=0)
            detector = EnsembleGrammarDetector(WINDOW, seed=0)
            with Timer() as ensemble_timer:
                detector.detect(series, k=3)
            with Timer() as stomp_timer:
                matrix_profile_stomp(series, WINDOW)
            results[name][length] = (ensemble_timer.elapsed, stomp_timer.elapsed)
    return results


def bench_fig08_scalability(benchmark, report):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    sections = []
    for name in GENERATORS:
        rows = [
            [
                f"{length:,}",
                f"{results[name][length][0]:.2f}",
                f"{results[name][length][1]:.2f}",
                f"{results[name][length][1] / max(results[name][length][0], 1e-9):.1f}x",
            ]
            for length in LENGTHS
        ]
        sections.append(
            format_table(
                ["Length", "Ensemble (s)", "STOMP (s)", "STOMP/Ensemble"],
                rows,
                title=f"Figure 8({'abc'[list(GENERATORS).index(name)]}): {name} time series",
            )
        )
    report("\n\n".join(sections) + "\n" + scale_note(), "fig08.txt")

    # Shape checks per data type.
    growth = len(LENGTHS) - 1
    length_ratio = LENGTHS[-1] / LENGTHS[0]
    for name in GENERATORS:
        ensemble_growth = results[name][LENGTHS[-1]][0] / max(
            results[name][LENGTHS[0]][0], 1e-9
        )
        stomp_growth = results[name][LENGTHS[-1]][1] / max(
            results[name][LENGTHS[0]][1], 1e-9
        )
        # STOMP grows roughly quadratically; ensemble far slower than that.
        assert ensemble_growth < stomp_growth, (name, ensemble_growth, stomp_growth)
        assert ensemble_growth < length_ratio * 3, (name, ensemble_growth)
        # At the largest length the ensemble wins; the margin widens with
        # scale (the paper reports ~10x at 160k points — the FULL setting),
        # so the required factor is scale-aware.
        ensemble_time, stomp_time = results[name][LENGTHS[-1]]
        required = 4.0 if FULL else 1.4
        assert stomp_time > required * ensemble_time, (name, ensemble_time, stomp_time)
