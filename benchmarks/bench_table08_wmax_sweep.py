"""Table 8 — effect of wmax in {5, 10, 15, 20} with amax fixed at 10.

Same comparator as Table 7 (best GI baseline per dataset). The paper's
takeaway: wmax = 5 performs worst; larger wmax values help, with the peak
depending on the dataset — a larger range for w matters more than for a.
"""

from __future__ import annotations

from benchlib import (
    DATASET_ORDER,
    PAPER_TABLE8,
    SWEEP_CASES,
    best_gi_baseline_scores,
    scale_note,
    sweep_ensemble_scores,
)
from repro.evaluation.comparison import wins_ties_losses
from repro.evaluation.tables import format_table

SETTINGS = [(5, 10), (10, 10), (15, 10), (20, 10)]


def bench_table08_wmax_sweep(benchmark, suite_results, report):
    def build():
        rows = []
        net_wins = {}
        for wmax, amax in SETTINGS:
            cells = [f"amax={amax}, wmax={wmax}"]
            total_wins = total_losses = 0
            for column, dataset in enumerate(DATASET_ORDER):
                ensemble = sweep_ensemble_scores(
                    dataset, max_paa_size=wmax, max_alphabet_size=amax
                )
                baseline = best_gi_baseline_scores(suite_results, dataset)[:SWEEP_CASES]
                record = wins_ties_losses(ensemble, baseline)
                total_wins += record.wins
                total_losses += record.losses
                cells.append(f"{record} | {PAPER_TABLE8[(wmax, amax)][column]}")
            net_wins[wmax] = total_wins - total_losses
            rows.append(cells)
        return rows, net_wins

    rows, net_wins = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["Setting"] + [f"{d} | paper" for d in DATASET_ORDER]
    table = format_table(
        headers,
        rows,
        title="Table 8: W/T/L of ensemble vs best GI baseline, wmax sweep (amax=10)",
    )
    report(table + "\n" + scale_note(), "table08.txt")

    # Shape check: wmax = 5 is never the strongest setting.
    assert net_wins[5] <= max(net_wins.values()), net_wins
