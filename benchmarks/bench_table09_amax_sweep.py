"""Table 9 — effect of amax in {5, 10, 15, 20} with wmax fixed at 10.

Same comparator as Tables 7–8. The paper's takeaway: amax matters less
than wmax — settings 10/15/20 produce very similar results, and even
amax = 5 is only subpar on some datasets.
"""

from __future__ import annotations


from benchlib import (
    DATASET_ORDER,
    PAPER_TABLE9,
    SWEEP_CASES,
    best_gi_baseline_scores,
    scale_note,
    sweep_ensemble_scores,
)
from repro.evaluation.comparison import wins_ties_losses
from repro.evaluation.tables import format_table

SETTINGS = [(10, 5), (10, 10), (10, 15), (10, 20)]


def bench_table09_amax_sweep(benchmark, suite_results, report):
    def build():
        rows = []
        net_wins = {}
        for wmax, amax in SETTINGS:
            cells = [f"amax={amax}, wmax={wmax}"]
            total_wins = total_losses = 0
            for column, dataset in enumerate(DATASET_ORDER):
                ensemble = sweep_ensemble_scores(
                    dataset, max_paa_size=wmax, max_alphabet_size=amax
                )
                baseline = best_gi_baseline_scores(suite_results, dataset)[:SWEEP_CASES]
                record = wins_ties_losses(ensemble, baseline)
                total_wins += record.wins
                total_losses += record.losses
                cells.append(f"{record} | {PAPER_TABLE9[(wmax, amax)][column]}")
            net_wins[amax] = total_wins - total_losses
            rows.append(cells)
        return rows, net_wins

    rows, net_wins = benchmark.pedantic(build, rounds=1, iterations=1)
    headers = ["Setting"] + [f"{d} | paper" for d in DATASET_ORDER]
    table = format_table(
        headers,
        rows,
        title="Table 9: W/T/L of ensemble vs best GI baseline, amax sweep (wmax=10)",
    )
    report(table + "\n" + scale_note(), "table09.txt")

    # Shape check: amax in {10, 15, 20} produce similar results (the spread
    # of their net wins is modest relative to the number of comparisons).
    large = [net_wins[a] for a in (10, 15, 20)]
    assert max(large) - min(large) <= 2 * SWEEP_CASES, net_wins
