"""Tables 13 & 14 — effect of the sliding window length n (0.6 .. 1.0 x na).

The ensemble is re-run with windows shorter than the planted anomaly length
na. Shape check: performance does not collapse for n < na — the paper's
point that the method is robust to an underestimated anomaly length.
"""

from __future__ import annotations

import numpy as np

from benchlib import (
    DATASET_ORDER,
    PAPER_TABLE13,
    PAPER_TABLE14,
    WINDOW_FRACTIONS,
    scale_note,
    sweep_ensemble_scores,
)
from repro.datasets.ucr_like import DATASETS
from repro.evaluation.metrics import hit_rate
from repro.evaluation.tables import format_float, format_table


def _scores_by_fraction() -> dict[str, dict[float, list[float]]]:
    results: dict[str, dict[float, list[float]]] = {}
    for dataset in DATASET_ORDER:
        instance_length = DATASETS[dataset].spec.instance_length
        results[dataset] = {
            fraction: sweep_ensemble_scores(
                dataset, window=int(fraction * instance_length)
            )
            for fraction in WINDOW_FRACTIONS
        }
    return results


def bench_table13_14_window_length(benchmark, report):
    results = benchmark.pedantic(_scores_by_fraction, rounds=1, iterations=1)

    score_rows = []
    hit_rows = []
    for dataset in DATASET_ORDER:
        score_cells = [dataset]
        hit_cells = [dataset]
        for column, fraction in enumerate(WINDOW_FRACTIONS):
            scores = results[dataset][fraction]
            score_cells.append(
                f"{format_float(float(np.mean(scores)))} | "
                f"{format_float(PAPER_TABLE13[dataset][column])}"
            )
            hit_cells.append(
                f"{format_float(hit_rate(scores), 2)} | "
                f"{format_float(PAPER_TABLE14[dataset][column], 2)}"
            )
        score_rows.append(score_cells)
        hit_rows.append(hit_cells)

    headers = ["Dataset"] + [f"n={f:.1f}na | paper" for f in WINDOW_FRACTIONS]
    table13 = format_table(headers, score_rows, title="Table 13: Performance (average Score) vs n")
    table14 = format_table(headers, hit_rows, title="Table 14: Performance (HitRate) vs n")
    report(table13 + "\n\n" + table14 + "\n" + scale_note(), "table13_14.txt")

    # Shape check: shrinking the window to 0.6 na does not collapse the
    # macro HitRate relative to n = na (paper: "the dependence on n is not
    # significant").
    def macro_hit(fraction: float) -> float:
        return float(np.mean([hit_rate(results[d][fraction]) for d in DATASET_ORDER]))

    assert macro_hit(0.6) >= macro_hit(1.0) - 0.25, {
        f: macro_hit(f) for f in WINDOW_FRACTIONS
    }
