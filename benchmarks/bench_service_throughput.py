"""Serving bench: micro-batched throughput vs batch-size-1 on the same pool.

The serving subsystem's pitch is consolidation: many concurrent callers on
one executor pool, coalesced into shared ``detect_batch`` calls. This bench
measures exactly that claim at 32 concurrent clients:

1. **batch-size-1 serving** — the same :class:`~repro.service.core.DetectService`
   with ``max_batch_size=1`` and no coalescing window: every request is its
   own engine call on the shared pool (the pre-serving behaviour, one
   request at a time).
2. **micro-batched serving** — ``max_batch_size=32`` with a small
   coalescing window: concurrent requests ride one ``detect_batch`` call,
   with per-request seeds (results stay bitwise identical — the parity
   suite is the proof) and chunked worker tasks.
3. **micro-batched + result cache** — the same requests repeated, answered
   from the LRU by series digest.

Small requests on purpose (48-point series, 9 single-member w-groups):
this is the serving regime where per-request dispatch overhead rivals the
detection itself, which is precisely what micro-batching amortizes — the
same framing as ``bench_executor_reuse``'s short-series pool-reuse case.
On multi-core machines the coalesced batch additionally packs the pool
better than per-request member fan-out can.

By default the measured speedup must be >= 2x (the PR's acceptance bar);
REPRO_BENCH_STRICT=0 reports without asserting (what CI does — a shared
runner's wall clock is too noisy to gate merges on). Scale knobs:
REPRO_SVC_CLIENTS (default 32), REPRO_SVC_ROUNDS (best-of, default 3),
REPRO_SVC_WORKERS (pool size, default 1).

Results land in ``results/BENCH_service_throughput.json`` so CI can track
the serving trajectory per PR alongside the other bench artifacts.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from benchlib import RESULTS_DIR
from repro.evaluation.tables import format_table
from repro.service import DetectService

STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
CLIENTS = int(os.environ.get("REPRO_SVC_CLIENTS", "32"))
ROUNDS = int(os.environ.get("REPRO_SVC_ROUNDS", "3"))
WORKERS = int(os.environ.get("REPRO_SVC_WORKERS", "1"))
#: The acceptance bar: micro-batching must at least double throughput.
REQUIRED_SPEEDUP = 2.0

#: Small requests on purpose — see the module docstring. Nine distinct PAA
#: sizes means batch-size-1 serving ships nine single-member group tasks
#: through the pool per request; the micro-batched path ships chunked
#: whole-series tasks instead.
SERIES_POINTS = 48
CONFIG = dict(window=10, ensemble_size=9, max_paa_size=10, max_alphabet_size=2)


def _client_series(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 6.0 * np.pi, SERIES_POINTS)
    return np.sin(t) + 0.05 * rng.standard_normal(SERIES_POINTS)


async def _measure(
    *, max_batch_size: int, batch_window: float, cache_entries: int, repeat_requests: bool
) -> tuple[float, dict]:
    """Best-of-ROUNDS throughput for one service configuration.

    ``repeat_requests=False`` gives every round fresh series/seeds (nothing
    cacheable); ``True`` re-sends one fixed request set every round, so
    with a cache all rounds after the first are pure hits.
    """
    async with DetectService(
        executor="process",
        n_jobs=WORKERS,
        batch_window=batch_window,
        max_batch_size=max_batch_size,
        max_pending=4 * CLIENTS,
        cache_entries=cache_entries,
        default_timeout=None,
    ) as service:
        await service.detect(_client_series(10**6), seed=0, **CONFIG)  # spawn the pool
        best = 0.0
        for round_index in range(ROUNDS):
            salt = 0 if repeat_requests else 1000 * (round_index + 1)
            series = [_client_series(salt + i) for i in range(CLIENTS)]
            started = time.perf_counter()
            await asyncio.gather(
                *(
                    service.detect(series[i], k=3, seed=salt + i, **CONFIG)
                    for i in range(CLIENTS)
                )
            )
            elapsed = time.perf_counter() - started
            best = max(best, CLIENTS / elapsed)
        return best, service.stats()["batcher"]


def bench_service_micro_batching_throughput(report):
    """Micro-batched vs batch-size-1 serving at CLIENTS concurrent callers."""
    baseline_rps, baseline_stats = asyncio.run(
        _measure(max_batch_size=1, batch_window=0.0, cache_entries=0, repeat_requests=False)
    )
    micro_rps, micro_stats = asyncio.run(
        _measure(
            max_batch_size=CLIENTS, batch_window=0.005, cache_entries=0, repeat_requests=False
        )
    )
    cached_rps, _ = asyncio.run(
        _measure(
            max_batch_size=CLIENTS,
            batch_window=0.005,
            cache_entries=4 * CLIENTS,
            repeat_requests=True,
        )
    )
    speedup = micro_rps / baseline_rps
    cache_speedup = cached_rps / baseline_rps

    rows = [
        [
            "batch-size-1",
            f"{baseline_rps:.0f}",
            f"{baseline_stats['mean_batch_size']:.1f}",
            "1.00x",
        ],
        [
            "micro-batched",
            f"{micro_rps:.0f}",
            f"{micro_stats['mean_batch_size']:.1f}",
            f"{speedup:.2f}x",
        ],
        ["micro + cache", f"{cached_rps:.0f}", "-", f"{cache_speedup:.2f}x"],
    ]
    text = format_table(
        ["serving mode", "req/s", "mean batch", "speedup"],
        rows,
        title=(
            f"Service throughput: {CLIENTS} concurrent clients, "
            f"{SERIES_POINTS}-point requests, process pool x{WORKERS} "
            f"(best of {ROUNDS})"
        ),
    )
    report(text, "bench_service_throughput.txt")

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "workers": WORKERS,
        "series_points": SERIES_POINTS,
        "config": CONFIG,
        "baseline_rps": baseline_rps,
        "micro_batched_rps": micro_rps,
        "cached_rps": cached_rps,
        "speedup": speedup,
        "cache_speedup": cache_speedup,
        "baseline_mean_batch": baseline_stats["mean_batch_size"],
        "micro_mean_batch": micro_stats["mean_batch_size"],
        "required_speedup": REQUIRED_SPEEDUP,
        "strict": STRICT,
    }
    (RESULTS_DIR / "BENCH_service_throughput.json").write_text(
        json.dumps(payload, indent=1) + "\n"
    )

    # Coalescing must actually have happened for the comparison to mean
    # anything — asserted unconditionally.
    assert micro_stats["mean_batch_size"] > 2.0, micro_stats
    assert baseline_stats["mean_batch_size"] == 1.0, baseline_stats
    if STRICT:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"micro-batching speedup {speedup:.2f}x below the {REQUIRED_SPEEDUP}x bar "
            f"(baseline {baseline_rps:.0f} req/s, micro {micro_rps:.0f} req/s)"
        )
        assert cache_speedup >= REQUIRED_SPEEDUP, (
            f"cached serving speedup {cache_speedup:.2f}x below the bar"
        )
