"""Serving bench: micro-batched throughput vs batch-size-1 on the same pool.

The serving subsystem's pitch is consolidation: many concurrent callers on
one executor pool, coalesced into shared ``detect_batch`` calls. This bench
measures exactly that claim at 32 concurrent clients:

1. **batch-size-1 serving** — the same :class:`~repro.service.core.DetectService`
   with ``max_batch_size=1`` and no coalescing window: every request is its
   own engine call on the shared pool (the pre-serving behaviour, one
   request at a time).
2. **micro-batched serving** — ``max_batch_size=32`` with a small
   coalescing window: concurrent requests ride one ``detect_batch`` call,
   with per-request seeds (results stay bitwise identical — the parity
   suite is the proof) and chunked worker tasks.
3. **micro-batched + result cache** — the same requests repeated, answered
   from the LRU by series digest.

Small requests on purpose (48-point series, 9 single-member w-groups):
this is the serving regime where per-request dispatch overhead rivals the
detection itself, which is precisely what micro-batching amortizes — the
same framing as ``bench_executor_reuse``'s short-series pool-reuse case.
On multi-core machines the coalesced batch additionally packs the pool
better than per-request member fan-out can.

By default the measured speedup must be >= 2x (the PR's acceptance bar);
REPRO_BENCH_STRICT=0 reports without asserting (what CI does — a shared
runner's wall clock is too noisy to gate merges on). Scale knobs:
REPRO_SVC_CLIENTS (default 32), REPRO_SVC_ROUNDS (best-of, default 3),
REPRO_SVC_WORKERS (pool size, default 1).

Results land in ``results/BENCH_service_throughput.json`` so CI can track
the serving trajectory per PR alongside the other bench artifacts.
"""

from __future__ import annotations

import os

from benchlib import RESULTS_DIR, strict
from repro.evaluation.tables import format_table
from runner.schema import write_bench_payload
from runner.workloads import service_best_rps

CLIENTS = int(os.environ.get("REPRO_SVC_CLIENTS", "32"))
ROUNDS = int(os.environ.get("REPRO_SVC_ROUNDS", "3"))
WORKERS = int(os.environ.get("REPRO_SVC_WORKERS", "1"))
#: The acceptance bar: micro-batching must at least double throughput.
REQUIRED_SPEEDUP = 2.0

#: Small requests on purpose — see the module docstring. Nine distinct PAA
#: sizes means batch-size-1 serving ships nine single-member group tasks
#: through the pool per request; the micro-batched path ships chunked
#: whole-series tasks instead (the detector config lives in
#: ``runner.workloads.service_best_rps``, shared with the matrix cell).
SERIES_POINTS = 48


def bench_service_micro_batching_throughput(report):
    """Micro-batched vs batch-size-1 serving at CLIENTS concurrent callers."""
    baseline_rps, baseline_stats = service_best_rps(
        clients=CLIENTS,
        workers=WORKERS,
        rounds=ROUNDS,
        max_batch_size=1,
        batch_window=0.0,
        series_points=SERIES_POINTS,
    )
    micro_rps, micro_stats = service_best_rps(
        clients=CLIENTS, workers=WORKERS, rounds=ROUNDS, series_points=SERIES_POINTS
    )
    cached_rps, _ = service_best_rps(
        clients=CLIENTS,
        workers=WORKERS,
        rounds=ROUNDS,
        cache_entries=4 * CLIENTS,
        repeat_requests=True,
        series_points=SERIES_POINTS,
    )
    speedup = micro_rps / baseline_rps
    cache_speedup = cached_rps / baseline_rps

    rows = [
        [
            "batch-size-1",
            f"{baseline_rps:.0f}",
            f"{baseline_stats['mean_batch_size']:.1f}",
            "1.00x",
        ],
        [
            "micro-batched",
            f"{micro_rps:.0f}",
            f"{micro_stats['mean_batch_size']:.1f}",
            f"{speedup:.2f}x",
        ],
        ["micro + cache", f"{cached_rps:.0f}", "-", f"{cache_speedup:.2f}x"],
    ]
    text = format_table(
        ["serving mode", "req/s", "mean batch", "speedup"],
        rows,
        title=(
            f"Service throughput: {CLIENTS} concurrent clients, "
            f"{SERIES_POINTS}-point requests, process pool x{WORKERS} "
            f"(best of {ROUNDS})"
        ),
    )
    report(text, "bench_service_throughput.txt")

    write_bench_payload(
        "service_throughput",
        {
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "workers": WORKERS,
            "series_points": SERIES_POINTS,
            "baseline_rps": baseline_rps,
            "micro_batched_rps": micro_rps,
            "cached_rps": cached_rps,
            "speedup": speedup,
            "cache_speedup": cache_speedup,
            "baseline_mean_batch": baseline_stats["mean_batch_size"],
            "micro_mean_batch": micro_stats["mean_batch_size"],
            "required_speedup": REQUIRED_SPEEDUP,
            "strict": strict(),
        },
        RESULTS_DIR,
    )

    # Coalescing must actually have happened for the comparison to mean
    # anything — asserted unconditionally.
    assert micro_stats["mean_batch_size"] > 2.0, micro_stats
    assert baseline_stats["mean_batch_size"] == 1.0, baseline_stats
    if strict():
        assert speedup >= REQUIRED_SPEEDUP, (
            f"micro-batching speedup {speedup:.2f}x below the {REQUIRED_SPEEDUP}x bar "
            f"(baseline {baseline_rps:.0f} req/s, micro {micro_rps:.0f} req/s)"
        )
        assert cache_speedup >= REQUIRED_SPEEDUP, (
            f"cached serving speedup {cache_speedup:.2f}x below the bar"
        )
