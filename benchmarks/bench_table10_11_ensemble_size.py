"""Tables 10 & 11 — effect of the ensemble size N in {5, 10, 25, 50}.

One N=50 ensemble run is computed per test series (with member curves
retained); each smaller N is evaluated on the *prefix* of the sampled
members — a uniform random prefix of a without-replacement sample is itself
a uniform sample, so this matches the paper's protocol while avoiding
redundant grammar runs.

Shape checks: N = 5 underperforms the larger ensembles, and performance
saturates by N >= 25 (Section 7.2.4).
"""

from __future__ import annotations

import numpy as np

from benchlib import (
    DATASET_ORDER,
    ENSEMBLE_SIZES,
    PAPER_TABLE10,
    PAPER_TABLE11,
    member_curves_for_corpus,
    scale_note,
)
from repro.core.ensemble import combine_and_detect
from repro.evaluation.metrics import best_score, hit_rate
from repro.evaluation.tables import format_float, format_table


def _scores_by_size() -> dict[str, dict[int, list[float]]]:
    results: dict[str, dict[int, list[float]]] = {}
    for dataset in DATASET_ORDER:
        per_size: dict[int, list[float]] = {size: [] for size in ENSEMBLE_SIZES}
        for case, curves in member_curves_for_corpus(dataset, ensemble_size=50):
            for size in ENSEMBLE_SIZES:
                candidates = combine_and_detect(
                    curves[:size], case.gt_length, k=3, selectivity=0.4
                )
                per_size[size].append(
                    best_score(candidates, case.gt_location, case.gt_length)
                )
        results[dataset] = per_size
    return results


def bench_table10_11_ensemble_size(benchmark, report):
    results = benchmark.pedantic(_scores_by_size, rounds=1, iterations=1)

    score_rows = []
    hit_rows = []
    for dataset in DATASET_ORDER:
        score_cells = [dataset]
        hit_cells = [dataset]
        for column, size in enumerate(ENSEMBLE_SIZES):
            scores = results[dataset][size]
            score_cells.append(
                f"{format_float(float(np.mean(scores)))} | "
                f"{format_float(PAPER_TABLE10[dataset][column])}"
            )
            hit_cells.append(
                f"{format_float(hit_rate(scores), 2)} | "
                f"{format_float(PAPER_TABLE11[dataset][column], 2)}"
            )
        score_rows.append(score_cells)
        hit_rows.append(hit_cells)

    headers = ["Dataset"] + [f"N={size} | paper" for size in ENSEMBLE_SIZES]
    table10 = format_table(headers, score_rows, title="Table 10: Performance (average Score) vs N")
    table11 = format_table(headers, hit_rows, title="Table 11: Performance (HitRate) vs N")
    report(table10 + "\n\n" + table11 + "\n" + scale_note(), "table10_11.txt")

    # Shape check: macro average of N=5 does not exceed the best larger N.
    def macro(size: int) -> float:
        return float(np.mean([np.mean(results[d][size]) for d in DATASET_ORDER]))

    assert macro(5) <= max(macro(25), macro(50)) + 0.02
