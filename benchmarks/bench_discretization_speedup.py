"""Section 6.2.3 — the multi-resolution discretization speedup.

The paper accelerates ensemble discretization two ways: prefix-sum FastPAA
(Algorithm 2) and the merged-breakpoint symbol matrix that yields all
alphabet resolutions from one binary search. This bench measures the end
effect: producing the numerosity-reduced token sequences for the full
(w, a) grid via the shared MultiResolutionDiscretizer — whose PAA and
interval matrices come from one :class:`repro.sax.plan.DiscretizationPlan`
sweep through the ``REPRO_KERNEL`` seam — versus discretizing from scratch
per combination.

Shape check: the shared path is substantially faster than the naive path
(the asymptotic claim is O(w_max^2 log a_max) vs O(n w_max a_max + ...)).
"""

from __future__ import annotations

from benchlib import scale_note
from repro.core.multiresolution import MultiResolutionDiscretizer
from repro.datasets.generators import synthetic_ecg
from repro.evaluation.tables import format_table
from repro.sax.numerosity import numerosity_reduction
from repro.sax.sax import discretize
from repro.utils.timing import Timer

LENGTH = 20_000
WINDOW = 200
WMAX = 10
AMAX = 10


def _naive(series) -> float:
    with Timer() as timer:
        for w in range(2, WMAX + 1):
            for a in range(2, AMAX + 1):
                words = discretize(series, WINDOW, w, a)
                numerosity_reduction(words, WINDOW)
    return timer.elapsed


def _shared(series) -> float:
    with Timer() as timer:
        discretizer = MultiResolutionDiscretizer(series, WINDOW, WMAX, AMAX)
        for w in range(2, WMAX + 1):
            for a in range(2, AMAX + 1):
                discretizer.tokens(w, a)
    return timer.elapsed


def bench_discretization_speedup(benchmark, report):
    series = synthetic_ecg(LENGTH, seed=0)

    # Warm caches once so the timed naive/shared comparison is fair.
    naive_time = _naive(series)
    shared_time = benchmark.pedantic(lambda: _shared(series), rounds=1, iterations=1)

    speedup = naive_time / max(shared_time, 1e-9)
    table = format_table(
        ["Path", "Grid", "Time (s)"],
        [
            ["naive per-(w,a) SAX", f"{WMAX - 1}x{AMAX - 1}", f"{naive_time:.3f}"],
            ["shared multi-resolution", f"{WMAX - 1}x{AMAX - 1}", f"{shared_time:.3f}"],
        ],
        title=(
            f"Section 6.2.3: discretizing a {LENGTH:,}-point series "
            f"(window {WINDOW}) at every (w, a)"
        ),
    )
    report(table + f"\nspeedup: {speedup:.1f}x\n" + scale_note(), "speedup.txt")

    # Equivalence is covered by unit tests; here assert the speed claim.
    assert speedup > 1.5, f"expected a clear speedup, got {speedup:.2f}x"
